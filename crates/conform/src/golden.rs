//! Golden-figure regression gates.
//!
//! A golden test renders its figure data to a [`Json`] document and calls
//! [`check`]. The blessed snapshot lives in `tests/golden/<name>.json`;
//! comparison is tolerance-aware on numbers (figures are floating-point
//! aggregates; bit-exactness across toolchains is not the contract) and
//! exact on structure, strings and booleans. Setting `ZR_BLESS=1`
//! rewrites the snapshots from the current run instead of comparing —
//! the one sanctioned way to update them after an intentional change.

use std::fmt;
use std::path::PathBuf;

use crate::json::Json;

/// Numeric comparison tolerance: a value passes when it is within
/// `abs` absolutely *or* within `rel` relatively.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Relative tolerance (fraction of the golden magnitude).
    pub rel: f64,
    /// Absolute tolerance.
    pub abs: f64,
}

impl Tolerance {
    /// The default gate for figure data: 0.1% relative or 1e-9 absolute.
    pub fn figures() -> Self {
        Tolerance {
            rel: 1e-3,
            abs: 1e-9,
        }
    }

    /// Exact comparison (integer-valued tables).
    pub fn exact() -> Self {
        Tolerance { rel: 0.0, abs: 0.0 }
    }

    fn accepts(&self, golden: f64, actual: f64) -> bool {
        if golden == actual {
            return true;
        }
        let diff = (golden - actual).abs();
        diff <= self.abs || diff <= self.rel * golden.abs()
    }
}

/// A golden-gate failure: either a missing snapshot or a list of
/// mismatching paths.
#[derive(Debug)]
pub struct GoldenError {
    /// Snapshot name.
    pub name: String,
    /// One line per problem, `$.path: detail` style.
    pub mismatches: Vec<String>,
}

impl fmt::Display for GoldenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "GOLDEN MISMATCH for `{}` ({} problem(s)):",
            self.name,
            self.mismatches.len()
        )?;
        for m in self.mismatches.iter().take(32) {
            writeln!(f, "  {m}")?;
        }
        if self.mismatches.len() > 32 {
            writeln!(f, "  … and {} more", self.mismatches.len() - 32)?;
        }
        writeln!(
            f,
            "If the change is intentional, re-bless with: ZR_BLESS=1 cargo test -p zr-conform"
        )
    }
}

impl std::error::Error for GoldenError {}

/// The blessed-snapshot directory (`tests/golden/` in this crate).
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Whether this run re-blesses instead of comparing (`ZR_BLESS=1`).
pub fn bless_requested() -> bool {
    std::env::var("ZR_BLESS").map(|v| v == "1").unwrap_or(false)
}

/// Compares `actual` against the blessed snapshot `name`, or rewrites
/// the snapshot when [`bless_requested`]. On mismatch the report is also
/// persisted under the conformance report directory so CI can upload it.
///
/// # Errors
///
/// [`GoldenError`] on a missing snapshot (without `ZR_BLESS=1`) or any
/// out-of-tolerance difference.
pub fn check(name: &str, actual: &Json, tolerance: Tolerance) -> Result<(), GoldenError> {
    let path = golden_dir().join(format!("{name}.json"));
    if bless_requested() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, actual.to_pretty()).expect("write golden snapshot");
        eprintln!("conform: blessed {}", path.display());
        return Ok(());
    }
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            return Err(GoldenError {
                name: name.to_string(),
                mismatches: vec![format!(
                    "$: snapshot {} unreadable ({e}); run with ZR_BLESS=1 to create it",
                    path.display()
                )],
            });
        }
    };
    let golden = match Json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            return Err(GoldenError {
                name: name.to_string(),
                mismatches: vec![format!("$: snapshot is not valid JSON: {e}")],
            });
        }
    };
    let mut mismatches = Vec::new();
    compare("$", &golden, actual, tolerance, &mut mismatches);
    if mismatches.is_empty() {
        return Ok(());
    }
    let err = GoldenError {
        name: name.to_string(),
        mismatches,
    };
    persist_report(name, &err);
    Err(err)
}

fn persist_report(name: &str, err: &GoldenError) {
    let dir = std::env::var("ZR_CONFORM_REPORT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/conform-reports")
        });
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("golden-{name}.txt")), err.to_string());
    }
}

fn compare(path: &str, golden: &Json, actual: &Json, tol: Tolerance, out: &mut Vec<String>) {
    match (golden, actual) {
        (Json::Null, Json::Null) => {}
        (Json::Bool(g), Json::Bool(a)) => {
            if g != a {
                out.push(format!("{path}: golden {g}, actual {a}"));
            }
        }
        (Json::Num(g), Json::Num(a)) => {
            if !tol.accepts(*g, *a) {
                out.push(format!(
                    "{path}: golden {g:?}, actual {a:?} (diff {:.3e})",
                    (g - a).abs()
                ));
            }
        }
        (Json::Str(g), Json::Str(a)) => {
            if g != a {
                out.push(format!("{path}: golden {g:?}, actual {a:?}"));
            }
        }
        (Json::Arr(g), Json::Arr(a)) => {
            if g.len() != a.len() {
                out.push(format!(
                    "{path}: golden has {} items, actual {}",
                    g.len(),
                    a.len()
                ));
                return;
            }
            for (i, (gi, ai)) in g.iter().zip(a).enumerate() {
                compare(&format!("{path}[{i}]"), gi, ai, tol, out);
            }
        }
        (Json::Obj(g), Json::Obj(a)) => {
            for (key, gv) in g {
                match a.iter().find(|(k, _)| k == key) {
                    Some((_, av)) => compare(&format!("{path}.{key}"), gv, av, tol, out),
                    None => out.push(format!("{path}.{key}: missing from actual")),
                }
            }
            for (key, _) in a {
                if !g.iter().any(|(k, _)| k == key) {
                    out.push(format!("{path}.{key}: not in golden"));
                }
            }
        }
        _ => out.push(format!(
            "{path}: type mismatch (golden {}, actual {})",
            kind_name(golden),
            kind_name(actual)
        )),
    }
}

fn kind_name(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::Num(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn num_doc(values: &[f64]) -> Json {
        Json::Obj(vec![(
            "series".into(),
            Json::Arr(values.iter().map(|&v| Json::Num(v)).collect()),
        )])
    }

    #[test]
    fn identical_documents_pass() {
        let doc = num_doc(&[1.0, 0.5, 0.25]);
        let mut out = Vec::new();
        compare("$", &doc, &doc, Tolerance::exact(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn tolerance_accepts_small_drift_and_rejects_large() {
        let golden = num_doc(&[1.0]);
        let near = num_doc(&[1.0005]);
        let far = num_doc(&[1.1]);
        let tol = Tolerance::figures();
        let mut out = Vec::new();
        compare("$", &golden, &near, tol, &mut out);
        assert!(out.is_empty(), "{out:?}");
        compare("$", &golden, &far, tol, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].starts_with("$.series[0]"), "{out:?}");
    }

    #[test]
    fn structural_differences_are_named_by_path() {
        let golden = Json::Obj(vec![
            ("a".into(), Json::Num(1.0)),
            ("b".into(), Json::Str("x".into())),
        ]);
        let actual = Json::Obj(vec![
            ("a".into(), Json::Str("oops".into())),
            ("c".into(), Json::Num(2.0)),
        ]);
        let mut out = Vec::new();
        compare("$", &golden, &actual, Tolerance::figures(), &mut out);
        let text = out.join("\n");
        assert!(text.contains("$.a: type mismatch"));
        assert!(text.contains("$.b: missing from actual"));
        assert!(text.contains("$.c: not in golden"));
    }

    #[test]
    fn array_length_mismatch_reported_once() {
        let golden = num_doc(&[1.0, 2.0]);
        let actual = num_doc(&[1.0]);
        let mut out = Vec::new();
        compare("$", &golden, &actual, Tolerance::figures(), &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("2 items"));
    }

    #[test]
    fn zero_golden_uses_absolute_tolerance() {
        let tol = Tolerance::figures();
        assert!(tol.accepts(0.0, 1e-12));
        assert!(!tol.accepts(0.0, 1e-3));
    }
}
