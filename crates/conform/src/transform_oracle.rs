//! The transform-pipeline oracle: round-trip and charge-cost laws.
//!
//! The production pipeline (`zr-transform`) chains EBDI, bit-plane
//! transposition, cell-aware inversion and per-row rotation. The oracle
//! does not re-implement those stages; it pins down the *laws* any
//! correct composition must satisfy, over every stage combination and
//! over adversarial content:
//!
//! - `decode(encode(x)) == x` — always, for every config;
//! - bit-plane transposition and rotation are bit permutations, so the
//!   charge cost of the encoded line is invariant under toggling them;
//! - cell-aware inversion makes the cost independent of the row's cell
//!   polarity, and without it an all-zeros line pays the full cost on
//!   anti-cell rows;
//! - without EBDI every stage is bit-wise monotone: clearing logical
//!   bits can only lower the charge cost;
//! - EBDI never increases the cost of constant-word lines (the
//!   degenerate but common case the paper's zero-page analysis relies
//!   on: all deltas collapse to zero).

use zr_types::TransformConfig;

use crate::diff::SplitMix64;

/// All 16 EBDI × bit-plane × rotation × cell-aware stage combinations.
pub fn all_transform_configs() -> Vec<TransformConfig> {
    let mut configs = Vec::with_capacity(16);
    for bits in 0u8..16 {
        configs.push(TransformConfig {
            ebdi: bits & 1 != 0,
            bit_plane: bits & 2 != 0,
            rotation: bits & 4 != 0,
            cell_aware: bits & 8 != 0,
        });
    }
    configs
}

/// Adversarial content families the oracle sweeps (§V's motivation: the
/// transformation must help friendly content and never corrupt any).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentFamily {
    /// A zero page line.
    AllZeros,
    /// Every byte 0xFF (all words equal −1).
    AllOnes,
    /// 64-bit words holding sign-extended 16-bit values.
    SignExtended,
    /// Small positive integers (< 2¹²) per word.
    SmallInt,
    /// Pointer-array-like words: one base plus small strides.
    Pointer,
    /// IEEE-754 doubles of varied magnitude.
    Float,
    /// ASCII text bytes.
    Text,
    /// Mostly-zero bytes with a few random non-zeros.
    Sparse,
    /// Uniformly random bytes.
    Random,
}

impl ContentFamily {
    /// Every family, in a fixed order.
    pub fn all() -> [ContentFamily; 9] {
        [
            ContentFamily::AllZeros,
            ContentFamily::AllOnes,
            ContentFamily::SignExtended,
            ContentFamily::SmallInt,
            ContentFamily::Pointer,
            ContentFamily::Float,
            ContentFamily::Text,
            ContentFamily::Sparse,
            ContentFamily::Random,
        ]
    }

    /// Generates one `line_bytes`-sized line of this family from `seed`
    /// (8-byte little-endian words, like the production cacheline model).
    pub fn generate(self, seed: u64, line_bytes: usize) -> Vec<u8> {
        assert_eq!(line_bytes % 8, 0, "lines are whole 8-byte words");
        let mut rng = SplitMix64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(self as u64));
        let words = line_bytes / 8;
        let mut line = vec![0u8; line_bytes];
        match self {
            ContentFamily::AllZeros => {}
            ContentFamily::AllOnes => line.fill(0xFF),
            ContentFamily::SignExtended => {
                for w in 0..words {
                    let v = (rng.next_u64() as u16) as i16 as i64 as u64;
                    line[w * 8..(w + 1) * 8].copy_from_slice(&v.to_le_bytes());
                }
            }
            ContentFamily::SmallInt => {
                for w in 0..words {
                    let v = rng.below(1 << 12);
                    line[w * 8..(w + 1) * 8].copy_from_slice(&v.to_le_bytes());
                }
            }
            ContentFamily::Pointer => {
                let base = (rng.next_u64() & 0x0000_7FFF_FFFF_FF00) | 0x10_0000;
                for w in 0..words {
                    let v = base + w as u64 * 16 + rng.below(8);
                    line[w * 8..(w + 1) * 8].copy_from_slice(&v.to_le_bytes());
                }
            }
            ContentFamily::Float => {
                for w in 0..words {
                    let mantissa = rng.next_u64() as f64 / u64::MAX as f64;
                    let exp = rng.below(12) as i32 - 6;
                    let v = (mantissa * 10f64.powi(exp)).to_bits();
                    line[w * 8..(w + 1) * 8].copy_from_slice(&v.to_le_bytes());
                }
            }
            ContentFamily::Text => {
                const ALPHABET: &[u8] = b"etaoin shrdluETAOIN.SHRDLU,0123456789";
                for b in line.iter_mut() {
                    *b = ALPHABET[rng.below(ALPHABET.len() as u64) as usize];
                }
            }
            ContentFamily::Sparse => {
                for _ in 0..3 {
                    let at = rng.below(line_bytes as u64) as usize;
                    line[at] = (rng.next_u64() as u8) | 0x01;
                }
            }
            ContentFamily::Random => {
                for b in line.iter_mut() {
                    *b = rng.next_u64() as u8;
                }
            }
        }
        line
    }

    /// Whether every word of a generated line holds the same value (so
    /// all EBDI deltas collapse to zero).
    pub fn constant_words(self) -> bool {
        matches!(self, ContentFamily::AllZeros | ContentFamily::AllOnes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_distinct_configs() {
        let configs = all_transform_configs();
        assert_eq!(configs.len(), 16);
        for i in 0..configs.len() {
            for j in i + 1..configs.len() {
                assert_ne!(
                    (
                        configs[i].ebdi,
                        configs[i].bit_plane,
                        configs[i].rotation,
                        configs[i].cell_aware
                    ),
                    (
                        configs[j].ebdi,
                        configs[j].bit_plane,
                        configs[j].rotation,
                        configs[j].cell_aware
                    )
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_and_family_shaped() {
        for family in ContentFamily::all() {
            let a = family.generate(11, 64);
            let b = family.generate(11, 64);
            assert_eq!(a, b, "{family:?} not deterministic");
            assert_eq!(a.len(), 64);
        }
        assert!(ContentFamily::AllZeros
            .generate(0, 64)
            .iter()
            .all(|&b| b == 0));
        assert!(ContentFamily::AllOnes
            .generate(0, 64)
            .iter()
            .all(|&b| b == 0xFF));
        let sparse = ContentFamily::Sparse.generate(5, 64);
        assert!(sparse.iter().filter(|&&b| b != 0).count() <= 3);
        let text = ContentFamily::Text.generate(5, 64);
        assert!(text.iter().all(|&b| b.is_ascii()));
        // Sign-extended words really are sign extensions.
        let se = ContentFamily::SignExtended.generate(9, 64);
        for w in se.chunks(8) {
            let v = i64::from_le_bytes(w.try_into().unwrap());
            assert_eq!(v as i16 as i64, v);
        }
    }
}
