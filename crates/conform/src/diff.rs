//! The differential side of the harness: drive the production
//! `zr-dram` stack and the [`RefOracle`](crate::oracle::RefOracle)
//! through identical command sequences and fail loudly — with a
//! debuggable report — on the first disagreement.

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use zr_dram::{DramRank, RefreshEngine, RefreshGranularity, RefreshPolicy};
use zr_telemetry::Telemetry;
use zr_trace::{parse_trace, TraceRecorder};
use zr_types::geometry::{BankId, RowIndex};
use zr_types::{Result, SystemConfig};

use crate::oracle::{OracleGranularity, OraclePolicy, RefOracle};

/// One step of a differential command sequence. Commands address the
/// geometry symbolically (bank/row/set indices) so the same sequence is
/// valid for both sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Write one encoded cacheline: `chip_mask` selects which chips'
    /// segments get charged content (the rest carry the row's discharged
    /// pattern), `fill_seed` varies the charged byte.
    WriteLine {
        /// Bank index.
        bank: u64,
        /// Rank-row index.
        row: u64,
        /// Line slot within the row.
        slot: u64,
        /// Per-chip charge mask (bit `c` charges chip `c`'s segment).
        chip_mask: u8,
        /// Varies the charged byte value.
        fill_seed: u8,
    },
    /// OS cleanse of a rank-row back to the discharged pattern.
    Cleanse {
        /// Bank index.
        bank: u64,
        /// Rank-row index.
        row: u64,
    },
    /// Remap a rank-row to a spare (only ever issued before refreshes).
    Spare {
        /// Bank index.
        bank: u64,
        /// Rank-row index.
        row: u64,
    },
    /// One per-bank AR command.
    ProcessAr {
        /// Bank index.
        bank: u64,
        /// AR set index.
        set: u64,
    },
    /// One full retention window at the configured granularity.
    RunWindow,
}

/// How a differential run is set up.
#[derive(Debug, Clone, Copy)]
pub struct DiffSetup {
    /// Refresh policy for both sides.
    pub policy: RefreshPolicy,
    /// AR granularity for both sides.
    pub granularity: RefreshGranularity,
    /// Fault injection on the production engine's staggered schedule.
    pub engine_skew: u64,
    /// Fault injection on the oracle's staggered schedule.
    pub oracle_skew: u64,
}

impl DiffSetup {
    /// A clean, fault-free setup under `policy`.
    pub fn clean(policy: RefreshPolicy) -> Self {
        DiffSetup {
            policy,
            granularity: RefreshGranularity::PerBank,
            engine_skew: 0,
            oracle_skew: 0,
        }
    }
}

/// A divergence between the production implementation and the reference
/// oracle, pinned to the exact command that exposed it.
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// Index of the diverging command within the sequence.
    pub command_index: usize,
    /// The diverging command, rendered.
    pub command: String,
    /// Which outcome field disagreed.
    pub field: &'static str,
    /// The oracle's value.
    pub expected: u64,
    /// The production implementation's value.
    pub actual: u64,
    /// The run setup, rendered.
    pub setup: String,
    /// Decoded tail of the production engine's flight-recorder stream —
    /// the `zr-trace` records leading up to the divergence.
    pub trace_tail: Vec<String>,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DIFFERENTIAL DIVERGENCE at command #{}",
            self.command_index
        )?;
        writeln!(f, "  command:  {}", self.command)?;
        writeln!(f, "  field:    {}", self.field)?;
        writeln!(f, "  oracle:   {}", self.expected)?;
        writeln!(f, "  engine:   {}", self.actual)?;
        writeln!(f, "  setup:    {}", self.setup)?;
        writeln!(f, "  trace tail ({} records):", self.trace_tail.len())?;
        for line in &self.trace_tail {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

impl DivergenceReport {
    /// Writes the report under the divergence-report directory
    /// (`ZR_CONFORM_REPORT_DIR`, defaulting to `target/conform-reports`
    /// at the workspace root) so CI can upload it as an artifact.
    /// Returns the path on success; IO failures are reported to stderr
    /// and swallowed — a failing differential must still panic with the
    /// report text even on a read-only filesystem.
    pub fn persist(&self, name: &str) -> Option<PathBuf> {
        let dir = std::env::var("ZR_CONFORM_REPORT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| {
                PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/conform-reports")
            });
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("conform: cannot create report dir {}: {e}", dir.display());
            return None;
        }
        let path = dir.join(format!("{name}.txt"));
        match std::fs::write(&path, self.to_string()) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("conform: cannot write report {}: {e}", path.display());
                None
            }
        }
    }
}

fn oracle_policy(policy: RefreshPolicy) -> OraclePolicy {
    match policy {
        RefreshPolicy::Conventional => OraclePolicy::Conventional,
        RefreshPolicy::ChargeAware => OraclePolicy::ChargeAware,
        RefreshPolicy::NaiveSram => OraclePolicy::NaiveSram,
    }
}

fn oracle_granularity(granularity: RefreshGranularity) -> OracleGranularity {
    match granularity {
        RefreshGranularity::PerBank => OracleGranularity::PerBank,
        RefreshGranularity::AllBank => OracleGranularity::AllBank,
    }
}

/// Builds the chip-major payload of a [`Command::WriteLine`]: chips in
/// `chip_mask` carry a charged byte derived from `fill_seed`, the rest
/// the row's discharged pattern.
fn line_payload(
    config: &SystemConfig,
    discharged_byte: u8,
    chip_mask: u8,
    fill_seed: u8,
) -> Vec<u8> {
    let chips = config.dram.num_chips;
    let seg = config.line.line_bytes / chips;
    // Any value other than the discharged byte charges the segment; xor
    // with a non-zero odd constant guarantees the difference.
    let fill = discharged_byte ^ (fill_seed | 0x01);
    let mut line = vec![0u8; config.line.line_bytes];
    for chip in 0..chips {
        let byte = if chip_mask & (1 << (chip % 8)) != 0 {
            fill
        } else {
            discharged_byte
        };
        line[chip * seg..(chip + 1) * seg].fill(byte);
    }
    line
}

/// Runs `commands` against both sides and returns the first divergence,
/// if any. `Ok(None)` means full agreement (including final totals).
///
/// # Errors
///
/// Propagates configuration/addressing errors from the production stack
/// (these are harness bugs, not divergences).
pub fn run_differential(
    config: &SystemConfig,
    setup: &DiffSetup,
    commands: &[Command],
) -> Result<Option<Box<DivergenceReport>>> {
    let mut rank = DramRank::new(config)?;
    let mut engine = RefreshEngine::with_granularity(config, setup.policy, setup.granularity)?;
    engine.set_telemetry(Arc::new(Telemetry::new()));
    let recorder = Arc::new(TraceRecorder::memory());
    engine.set_trace(Arc::clone(&recorder));
    engine.set_stagger_skew(setup.engine_skew);
    let mut oracle = RefOracle::new(config, oracle_policy(setup.policy));
    oracle.stagger_skew = setup.oracle_skew;
    let granularity = oracle_granularity(setup.granularity);

    let setup_text = format!(
        "policy={:?} granularity={:?} engine_skew={} oracle_skew={} banks={} rows/bank={} chips={}",
        setup.policy,
        setup.granularity,
        setup.engine_skew,
        setup.oracle_skew,
        oracle.banks(),
        oracle.rows_per_bank(),
        oracle.chips(),
    );

    let diverged = |index: usize,
                    command: &Command,
                    field: &'static str,
                    expected: u64,
                    actual: u64|
     -> Box<DivergenceReport> {
        recorder.finalize();
        let bytes = recorder.take_bytes();
        let trace_tail = match parse_trace(&bytes) {
            Ok(records) => records
                .iter()
                .rev()
                .take(24)
                .rev()
                .map(|r| {
                    format!(
                        "{:<17} src={:#04x} flags={:#06x} bank={} a={} b={} c={}",
                        r.kind.name(),
                        r.src,
                        r.flags,
                        r.bank,
                        r.a,
                        r.b,
                        r.c
                    )
                })
                .collect(),
            Err(e) => vec![format!("<trace unreadable: {e}>")],
        };
        Box::new(DivergenceReport {
            command_index: index,
            command: format!("{command:?}"),
            field,
            expected,
            actual,
            setup: setup_text.clone(),
            trace_tail,
        })
    };

    for (index, command) in commands.iter().enumerate() {
        match *command {
            Command::WriteLine {
                bank,
                row,
                slot,
                chip_mask,
                fill_seed,
            } => {
                let line = line_payload(config, oracle.discharged_byte(row), chip_mask, fill_seed);
                rank.write_encoded_line(
                    BankId(bank as usize),
                    RowIndex(row),
                    slot as usize,
                    &line,
                )?;
                engine.note_write(&rank, BankId(bank as usize), RowIndex(row));
                oracle.write_line(bank, row, slot, &line);
                oracle.note_write(bank, row);
            }
            Command::Cleanse { bank, row } => {
                rank.cleanse_row(BankId(bank as usize), RowIndex(row))?;
                engine.note_write(&rank, BankId(bank as usize), RowIndex(row));
                oracle.cleanse(bank, row);
                oracle.note_write(bank, row);
            }
            Command::Spare { bank, row } => {
                rank.add_spared_row(BankId(bank as usize), RowIndex(row));
                oracle.spare(bank, row);
            }
            Command::ProcessAr { bank, set } => {
                let actual = engine.process_ar(&rank, BankId(bank as usize), set);
                let expected = oracle.process_ar(bank, set);
                let pairs = [
                    (
                        "rows_refreshed",
                        expected.rows_refreshed,
                        actual.rows_refreshed,
                    ),
                    ("rows_skipped", expected.rows_skipped, actual.rows_skipped),
                    ("table_reads", expected.table_reads, actual.table_reads),
                    ("table_writes", expected.table_writes, actual.table_writes),
                ];
                for (field, exp, act) in pairs {
                    if exp != act {
                        return Ok(Some(diverged(index, command, field, exp, act)));
                    }
                }
            }
            Command::RunWindow => {
                let actual = engine.run_window(&mut rank);
                let expected = oracle.run_window(granularity);
                let pairs = [
                    (
                        "rows_refreshed",
                        expected.rows_refreshed,
                        actual.rows_refreshed,
                    ),
                    ("rows_skipped", expected.rows_skipped, actual.rows_skipped),
                    ("ar_commands", expected.ar_commands, actual.ar_commands),
                    ("table_reads", expected.table_reads, actual.table_reads),
                    ("table_writes", expected.table_writes, actual.table_writes),
                ];
                for (field, exp, act) in pairs {
                    if exp != act {
                        return Ok(Some(diverged(index, command, field, exp, act)));
                    }
                }
            }
        }
    }

    // Fault-free runs must also leave the production integrity audit
    // clean: no stale skip promise on a charged row.
    if setup.engine_skew == 0 && setup.oracle_skew == 0 {
        let hazards = engine.audit_hazards(&rank);
        if hazards != 0 {
            return Ok(Some(diverged(
                commands.len(),
                commands.last().unwrap_or(&Command::RunWindow),
                "audit_hazards",
                0,
                hazards,
            )));
        }
    }
    Ok(None)
}

/// SplitMix64 — the harness's own deterministic generator, so sequences
/// are reproducible from a bare `u64` independent of any RNG crate.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` ≥ 1).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

/// Generates a reproducible command sequence for `config` from `seed`.
///
/// The mix is tuned to exercise the interesting transitions: writes that
/// charge a *subset* of chips (so staggered chip/row pairing matters),
/// discharging overwrites, cleanses, occasional spares up front, and
/// both individual AR commands and full windows.
pub fn generate_commands(config: &SystemConfig, seed: u64, len: usize) -> Vec<Command> {
    let mut rng = SplitMix64(seed ^ 0xC0FF_EE00_D15E_A5E5);
    let banks = config.dram.num_banks as u64;
    let rows = config.dram.capacity_bytes / config.dram.row_bytes as u64 / banks;
    let slots = (config.dram.row_bytes / config.line.line_bytes) as u64;
    let ar_rows = std::cmp::max(rows / 8192, 1);
    let ar_sets = rows / ar_rows;
    let mut commands = Vec::with_capacity(len);
    // A few spares first (they are a setup-time remapping in practice).
    for _ in 0..rng.below(3) {
        commands.push(Command::Spare {
            bank: rng.below(banks),
            row: rng.below(rows),
        });
    }
    while commands.len() < len {
        let roll = rng.below(100);
        let command = if roll < 40 {
            Command::WriteLine {
                bank: rng.below(banks),
                row: rng.below(rows),
                slot: rng.below(slots),
                // Bias toward sparse masks so per-chip charge varies; 0
                // is a legal "all segments discharged" write.
                chip_mask: (rng.next_u64() & rng.next_u64() & 0xFF) as u8,
                fill_seed: (rng.next_u64() & 0xFF) as u8,
            }
        } else if roll < 50 {
            Command::Cleanse {
                bank: rng.below(banks),
                row: rng.below(rows),
            }
        } else if roll < 80 {
            Command::ProcessAr {
                bank: rng.below(banks),
                set: rng.below(ar_sets),
            }
        } else {
            Command::RunWindow
        };
        commands.push(command);
    }
    commands
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_sequences_are_reproducible() {
        let cfg = SystemConfig::small_test();
        assert_eq!(
            generate_commands(&cfg, 7, 40),
            generate_commands(&cfg, 7, 40)
        );
        assert_ne!(
            generate_commands(&cfg, 7, 40),
            generate_commands(&cfg, 8, 40)
        );
    }

    #[test]
    fn clean_runs_agree() {
        let cfg = SystemConfig::small_test();
        let commands = generate_commands(&cfg, 42, 48);
        let report = run_differential(
            &cfg,
            &DiffSetup::clean(RefreshPolicy::ChargeAware),
            &commands,
        )
        .unwrap();
        assert!(
            report.is_none(),
            "unexpected divergence: {}",
            report.unwrap()
        );
    }

    #[test]
    fn payloads_respect_the_chip_mask() {
        let cfg = SystemConfig::small_test();
        let line = line_payload(&cfg, 0x00, 0b0000_0101, 0x10);
        let seg = cfg.line.line_bytes / cfg.dram.num_chips;
        assert!(line[0..seg].iter().all(|&b| b != 0x00));
        assert!(line[seg..2 * seg].iter().all(|&b| b == 0x00));
        assert!(line[2 * seg..3 * seg].iter().all(|&b| b != 0x00));
        // Anti-cell rows: discharged byte is 0xFF and masked-out chips
        // carry it verbatim.
        let anti = line_payload(&cfg, 0xFF, 0b0000_0010, 0x00);
        assert!(anti[0..seg].iter().all(|&b| b == 0xFF));
        assert!(anti[seg..2 * seg].iter().all(|&b| b != 0xFF));
    }

    #[test]
    fn divergence_reports_render_the_command_index() {
        let report = DivergenceReport {
            command_index: 17,
            command: "RunWindow".into(),
            field: "rows_skipped",
            expected: 3,
            actual: 5,
            setup: "test".into(),
            trace_tail: vec!["ref_skip bank=0".into()],
        };
        let text = report.to_string();
        assert!(text.contains("command #17"));
        assert!(text.contains("rows_skipped"));
        assert!(text.contains("ref_skip"));
    }
}
