//! zr-conform — the cross-layer differential conformance harness.
//!
//! The repo's headline results (Fig. 14/15/16, the overhead table) only
//! hold if the charge-domain DRAM model, the §IV-C refresh scheduling,
//! and the value-transformation pipeline agree with one another. This
//! crate is the layer that checks them against independent references
//! and fails loudly — with debuggable, offline-readable reports — on any
//! divergence. Three layers:
//!
//! 1. **Reference oracle** ([`oracle`]): a slow-but-obviously-correct
//!    model of charge decay, the staggered refresh-counter schedule and
//!    the §IV-B skip decisions, re-derived from the raw config and the
//!    paper's prose (explicit maps and loops, no packed tables).
//! 2. **Differential runner** ([`diff`]): drives `zr-dram` and the
//!    oracle through identical reproducible command sequences; the first
//!    disagreement produces a [`diff::DivergenceReport`] naming the
//!    exact command index and citing the production engine's `zr-trace`
//!    flight-recorder records. Both sides carry a `stagger_skew`
//!    fault-injection knob so the harness can prove it catches a real
//!    off-by-one in the schedule.
//! 3. **Golden-figure gate** ([`golden`] + [`json`]): small-config runs
//!    of the paper figures snapshotted to `tests/golden/*.json` with
//!    tolerance-aware comparison and a `ZR_BLESS=1` re-bless path.
//!
//! The transform pipeline gets its own law-based oracle
//! ([`transform_oracle`]): round-trip identity plus charge-cost
//! invariants over every stage combination and adversarial content.
//!
//! See `docs/CONFORMANCE.md` for the workflow.

pub mod diff;
pub mod golden;
pub mod json;
pub mod oracle;
pub mod transform_oracle;

pub use diff::{generate_commands, run_differential, Command, DiffSetup, DivergenceReport};
pub use golden::{check as golden_check, Tolerance};
pub use json::Json;
pub use oracle::{OracleGranularity, OraclePolicy, RefOracle};
pub use transform_oracle::{all_transform_configs, ContentFamily};
