//! The slow-but-obviously-correct reference model of the charge-aware
//! refresh subsystem.
//!
//! Everything here is re-derived from the raw [`SystemConfig`] fields and
//! the paper's prose, *not* from `zr-types::Geometry` or `zr-dram` — the
//! whole point is that two independent formulations of §IV must agree.
//! Where the production engine uses packed bit tables, block arithmetic
//! and batched table traffic, the oracle keeps explicit maps and explicit
//! loops:
//!
//! - charge state is a set of *charged slots* per chip-row (a chip-row is
//!   discharged exactly when no slot in it holds charged content);
//! - the §IV-C staggered schedule is evaluated step by step, and the
//!   inverse mapping (which AR sets does a write to rank-row `r` touch?)
//!   is found by exhaustively scanning the step block instead of the
//!   closed-form set-range arithmetic the production `note_write` uses;
//! - skip decisions re-walk the maps per command.
//!
//! An optional `stagger_skew` mirrors the production engine's
//! fault-injection knob so tests can put the off-by-one on either side of
//! the differential and watch the harness catch it.

use std::collections::{BTreeMap, BTreeSet};

use zr_types::SystemConfig;

/// Which refresh-management policy the oracle models. Mirrors
/// `zr_dram::RefreshPolicy` without depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OraclePolicy {
    /// Refresh everything.
    Conventional,
    /// The paper's split access-bit / status-table design (§IV-B).
    ChargeAware,
    /// The naive rank-row SRAM mirror ablation.
    NaiveSram,
}

/// AR command granularity the oracle models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleGranularity {
    /// One command per (bank, AR set).
    PerBank,
    /// One command per AR set covering every bank.
    AllBank,
}

/// What one reference AR command did; field-for-field comparable with the
/// production `ArOutcome`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OracleOutcome {
    /// Chip-rows refreshed.
    pub rows_refreshed: u64,
    /// Chip-rows skipped.
    pub rows_skipped: u64,
    /// Batched status-table reads.
    pub table_reads: u64,
    /// Batched status-table writes.
    pub table_writes: u64,
}

/// Reference window statistics; comparable with the production
/// `WindowStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OracleWindow {
    /// Chip-rows refreshed.
    pub rows_refreshed: u64,
    /// Chip-rows skipped.
    pub rows_skipped: u64,
    /// AR commands issued.
    pub ar_commands: u64,
    /// Batched status-table reads.
    pub table_reads: u64,
    /// Batched status-table writes.
    pub table_writes: u64,
}

impl OracleWindow {
    fn add(&mut self, out: &OracleOutcome, commands: u64) {
        self.rows_refreshed += out.rows_refreshed;
        self.rows_skipped += out.rows_skipped;
        self.ar_commands += commands;
        self.table_reads += out.table_reads;
        self.table_writes += out.table_writes;
    }
}

/// The reference model. See the module docs for what it re-derives.
#[derive(Debug, Clone)]
pub struct RefOracle {
    chips: u64,
    banks: u64,
    rows_per_bank: u64,
    ar_rows: u64,
    ar_sets: u64,
    line_bytes_per_chip: usize,
    cell_block_rows: u64,
    anti_cells_first: bool,
    policy: OraclePolicy,
    /// Fault-injection offset added inside the staggered formula (0 in a
    /// correct model).
    pub stagger_skew: u64,
    /// Charged slots per (chip, bank, row); a missing or empty entry
    /// means the chip-row is fully discharged.
    charged: BTreeMap<(u64, u64, u64), BTreeSet<u64>>,
    /// Coarse access bits per (bank, AR set); all start *set* so the
    /// first window of every set scans (§IV-B).
    access: Vec<Vec<bool>>,
    /// The in-DRAM discharged-status table: (chip, bank, row) → known
    /// discharged. Missing entries mean "charged" — the conservative
    /// power-up state.
    status: BTreeMap<(u64, u64, u64), bool>,
    /// The naive ablation's rank-row mirror: (bank, row) → discharged.
    /// Missing entries mean "discharged" (the tracker is accurate from
    /// power-up where everything is cleansed).
    naive: BTreeMap<(u64, u64), bool>,
    /// Rows remapped to spares; never skipped, never recorded discharged.
    spared: BTreeSet<(u64, u64)>,
}

impl RefOracle {
    /// Derives the reference geometry straight from the config fields.
    ///
    /// # Panics
    ///
    /// Panics when the config is not self-consistent (non-dividing
    /// capacities); conformance inputs are always the repo's own
    /// validated configs, so an inconsistency is itself a finding.
    pub fn new(config: &SystemConfig, policy: OraclePolicy) -> Self {
        let chips = config.dram.num_chips as u64;
        let banks = config.dram.num_banks as u64;
        let row_bytes = config.dram.row_bytes as u64;
        assert_eq!(
            config.dram.capacity_bytes % (row_bytes * banks),
            0,
            "capacity must divide into bank rows"
        );
        let rows_per_bank = config.dram.capacity_bytes / row_bytes / banks;
        // §IV-C: 8192 REF commands per tRET window; each covers
        // rows_per_bank/8192 steps per bank, at least one.
        let ar_rows = std::cmp::max(rows_per_bank / 8192, 1);
        assert_eq!(rows_per_bank % ar_rows, 0, "AR sets must tile the bank");
        let ar_sets = rows_per_bank / ar_rows;
        assert_eq!(
            config.line.line_bytes % config.dram.num_chips,
            0,
            "lines must stripe evenly across chips"
        );
        RefOracle {
            chips,
            banks,
            rows_per_bank,
            ar_rows,
            ar_sets,
            line_bytes_per_chip: config.line.line_bytes / config.dram.num_chips,
            cell_block_rows: config.dram.cell_block_rows,
            anti_cells_first: config.dram.anti_cells_first,
            policy,
            stagger_skew: 0,
            charged: BTreeMap::new(),
            access: vec![vec![true; ar_sets as usize]; banks as usize],
            status: BTreeMap::new(),
            naive: BTreeMap::new(),
            spared: BTreeSet::new(),
        }
    }

    /// Number of AR sets per bank in the reference geometry.
    pub fn ar_sets(&self) -> u64 {
        self.ar_sets
    }

    /// Number of banks in the reference geometry.
    pub fn banks(&self) -> u64 {
        self.banks
    }

    /// Rows per bank in the reference geometry.
    pub fn rows_per_bank(&self) -> u64 {
        self.rows_per_bank
    }

    /// Number of chips in the reference geometry.
    pub fn chips(&self) -> u64 {
        self.chips
    }

    /// The byte value that leaves a cell of `row` discharged (§II-B:
    /// true-cell rows discharge to 0x00, anti-cell rows to 0xFF, types
    /// alternating every `cell_block_rows`).
    pub fn discharged_byte(&self, row: u64) -> u8 {
        let block_is_odd = (row / self.cell_block_rows) % 2 == 1;
        let anti = block_is_odd ^ self.anti_cells_first;
        if anti {
            0xFF
        } else {
            0x00
        }
    }

    /// The §IV-C staggered schedule: the row chip `chip` refreshes at
    /// step `n` (plus the fault-injection skew, if set).
    pub fn staggered(&self, n: u64, chip: u64) -> u64 {
        let k = self.chips;
        let group_base = n - n % k;
        group_base + (n % k + chip + self.stagger_skew) % k
    }

    /// Marks `row` of `bank` as remapped to a spare: always refreshed,
    /// never skipped.
    pub fn spare(&mut self, bank: u64, row: u64) {
        self.spared.insert((bank, row));
    }

    /// Whether the chip-row holds no charged content.
    fn chip_row_discharged(&self, chip: u64, bank: u64, row: u64) -> bool {
        self.charged
            .get(&(chip, bank, row))
            .is_none_or(|slots| slots.is_empty())
    }

    /// Applies the content of one chip-major encoded line write: slot
    /// `slot` of (`bank`, `row`). Each chip's segment either charges or
    /// discharges that chip's copy of the slot.
    pub fn write_line(&mut self, bank: u64, row: u64, slot: u64, chip_major: &[u8]) {
        let seg = self.line_bytes_per_chip;
        assert_eq!(chip_major.len(), seg * self.chips as usize);
        let discharged_byte = self.discharged_byte(row);
        for chip in 0..self.chips {
            let segment = &chip_major[chip as usize * seg..(chip as usize + 1) * seg];
            let segment_discharged = segment.iter().all(|&b| b == discharged_byte);
            let slots = self.charged.entry((chip, bank, row)).or_default();
            if segment_discharged {
                slots.remove(&slot);
            } else {
                slots.insert(slot);
            }
        }
    }

    /// Applies an OS cleanse of a rank-row: every chip's copy returns to
    /// the fully discharged pattern.
    pub fn cleanse(&mut self, bank: u64, row: u64) {
        for chip in 0..self.chips {
            self.charged.remove(&(chip, bank, row));
        }
    }

    /// The tracking-structure side of a write notification, applied
    /// *after* the content change (same contract as the production
    /// engine's `note_write`).
    pub fn note_write(&mut self, bank: u64, row: u64) {
        match self.policy {
            OraclePolicy::Conventional => {}
            OraclePolicy::ChargeAware => {
                // Which AR sets must rescan? Exhaustively: every step `n`
                // whose staggered row equals `row` for some chip. The
                // schedule visits a row only within its own k-step group,
                // so scanning that group is exhaustive. The skew is *not*
                // applied here — note_write marks whole step groups and a
                // group covers the same rows under any rotation.
                let k = self.chips;
                let group_base = (row / k) * k;
                let saved = std::mem::replace(&mut self.stagger_skew, 0);
                for n in group_base..group_base + k {
                    for chip in 0..k {
                        if self.staggered(n, chip) == row {
                            self.access[bank as usize][(n / self.ar_rows) as usize] = true;
                        }
                    }
                }
                self.stagger_skew = saved;
            }
            OraclePolicy::NaiveSram => {
                let discharged = (0..self.chips).all(|c| self.chip_row_discharged(c, bank, row));
                self.naive.insert((bank, row), discharged);
            }
        }
    }

    /// One reference per-bank AR command over AR set `set` of `bank`.
    pub fn process_ar(&mut self, bank: u64, set: u64) -> OracleOutcome {
        assert!(set < self.ar_sets, "AR set out of range");
        let mut out = OracleOutcome::default();
        let steps = set * self.ar_rows..(set + 1) * self.ar_rows;
        match self.policy {
            OraclePolicy::Conventional => {
                out.rows_refreshed = self.ar_rows * self.chips;
            }
            OraclePolicy::ChargeAware => {
                let trusted = !self.access[bank as usize][set as usize];
                if trusted {
                    out.table_reads = self.chips;
                    for n in steps {
                        for chip in 0..self.chips {
                            let row = self.staggered(n, chip);
                            let known_discharged =
                                *self.status.get(&(chip, bank, row)).unwrap_or(&false);
                            if !self.spared.contains(&(bank, row)) && known_discharged {
                                out.rows_skipped += 1;
                            } else {
                                out.rows_refreshed += 1;
                            }
                        }
                    }
                } else {
                    out.table_writes = self.chips;
                    for n in steps {
                        for chip in 0..self.chips {
                            let row = self.staggered(n, chip);
                            out.rows_refreshed += 1;
                            let discharged = !self.spared.contains(&(bank, row))
                                && self.chip_row_discharged(chip, bank, row);
                            self.status.insert((chip, bank, row), discharged);
                        }
                    }
                    self.access[bank as usize][set as usize] = false;
                }
            }
            OraclePolicy::NaiveSram => {
                for n in steps {
                    for chip in 0..self.chips {
                        let row = self.staggered(n, chip);
                        let discharged = *self.naive.get(&(bank, row)).unwrap_or(&true);
                        if !self.spared.contains(&(bank, row)) && discharged {
                            out.rows_skipped += 1;
                        } else {
                            out.rows_refreshed += 1;
                        }
                    }
                }
            }
        }
        out
    }

    /// One full reference retention window at the given granularity.
    pub fn run_window(&mut self, granularity: OracleGranularity) -> OracleWindow {
        let mut window = OracleWindow::default();
        for set in 0..self.ar_sets {
            match granularity {
                OracleGranularity::PerBank => {
                    for bank in 0..self.banks {
                        let out = self.process_ar(bank, set);
                        window.add(&out, 1);
                    }
                }
                OracleGranularity::AllBank => {
                    let mut combined = OracleOutcome::default();
                    for bank in 0..self.banks {
                        let out = self.process_ar(bank, set);
                        combined.rows_refreshed += out.rows_refreshed;
                        combined.rows_skipped += out.rows_skipped;
                        combined.table_reads += out.table_reads;
                        combined.table_writes += out.table_writes;
                    }
                    window.add(&combined, 1);
                }
            }
        }
        window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(policy: OraclePolicy) -> RefOracle {
        RefOracle::new(&SystemConfig::small_test(), policy)
    }

    #[test]
    fn geometry_matches_small_test_expectations() {
        let o = oracle(OraclePolicy::ChargeAware);
        assert_eq!(o.chips(), 8);
        assert_eq!(o.banks(), 2);
        assert_eq!(o.rows_per_bank(), 64);
        assert_eq!(o.ar_sets(), 64);
    }

    #[test]
    fn staggered_is_a_permutation_within_each_group() {
        let o = oracle(OraclePolicy::Conventional);
        for chip in 0..o.chips() {
            let rows: BTreeSet<u64> = (0..o.rows_per_bank())
                .map(|n| o.staggered(n, chip))
                .collect();
            assert_eq!(rows.len() as u64, o.rows_per_bank());
        }
    }

    #[test]
    fn cell_types_alternate_in_blocks() {
        let o = oracle(OraclePolicy::Conventional);
        // small_test: 16-row blocks, true cells first.
        assert_eq!(o.discharged_byte(0), 0x00);
        assert_eq!(o.discharged_byte(15), 0x00);
        assert_eq!(o.discharged_byte(16), 0xFF);
        assert_eq!(o.discharged_byte(32), 0x00);
    }

    #[test]
    fn first_window_scans_second_skips_everything() {
        let mut o = oracle(OraclePolicy::ChargeAware);
        let total = o.rows_per_bank() * o.banks() * o.chips();
        let w1 = o.run_window(OracleGranularity::PerBank);
        assert_eq!(w1.rows_refreshed, total);
        assert_eq!(w1.rows_skipped, 0);
        let w2 = o.run_window(OracleGranularity::PerBank);
        assert_eq!(w2.rows_skipped, total);
        assert_eq!(w2.table_writes, 0);
    }

    #[test]
    fn charged_then_discharged_slot_restores_the_skip() {
        let mut o = oracle(OraclePolicy::ChargeAware);
        o.run_window(OracleGranularity::PerBank);
        let line_len = 64;
        let charged = vec![0xABu8; line_len];
        o.write_line(0, 2, 0, &charged);
        o.note_write(0, 2);
        let w = o.run_window(OracleGranularity::PerBank);
        assert!(w.rows_refreshed > 0);
        // Overwrite the same slot with the discharged pattern.
        let discharged = vec![0x00u8; line_len];
        o.write_line(0, 2, 0, &discharged);
        o.note_write(0, 2);
        o.run_window(OracleGranularity::PerBank); // rescans
        let w = o.run_window(OracleGranularity::PerBank);
        assert_eq!(w.rows_refreshed, 0);
    }

    #[test]
    fn naive_mirror_skips_from_power_up() {
        let mut o = oracle(OraclePolicy::NaiveSram);
        let total = o.rows_per_bank() * o.banks() * o.chips();
        let w = o.run_window(OracleGranularity::PerBank);
        assert_eq!(w.rows_skipped, total);
    }

    #[test]
    fn spared_rows_never_skip() {
        let mut o = oracle(OraclePolicy::ChargeAware);
        o.spare(0, 1);
        o.run_window(OracleGranularity::PerBank);
        let w = o.run_window(OracleGranularity::PerBank);
        assert_eq!(w.rows_refreshed, o.chips());
    }

    #[test]
    fn allbank_matches_perbank_rows_with_fewer_commands() {
        let mut per = oracle(OraclePolicy::ChargeAware);
        let mut all = per.clone();
        let charged = vec![0x11u8; 64];
        for o in [&mut per, &mut all] {
            o.write_line(1, 3, 2, &charged);
            o.note_write(1, 3);
        }
        let wp = per.run_window(OracleGranularity::PerBank);
        let wa = all.run_window(OracleGranularity::AllBank);
        assert_eq!(wp.rows_refreshed, wa.rows_refreshed);
        assert_eq!(wp.rows_skipped, wa.rows_skipped);
        assert_eq!(wp.ar_commands, wa.ar_commands * per.banks());
    }
}
