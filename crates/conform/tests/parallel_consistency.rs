//! Parallel-consistency oracle check: a seeded differential sweep run
//! on the `zr-par` pool must produce exactly the same divergence
//! verdicts (namely: none) as the same sweep run serially.
//!
//! `run_differential` builds hermetic per-case engines (private
//! telemetry, private memory trace), so cases are independent by
//! construction — this test pins that property against regressions in
//! either the harness or the pool.

use zr_conform::diff::{generate_commands, run_differential, DiffSetup};
use zr_dram::RefreshPolicy;
use zr_types::SystemConfig;

fn base_seed() -> u64 {
    std::env::var("ZR_CONFORM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_C0DE)
}

fn policies() -> [RefreshPolicy; 3] {
    [
        RefreshPolicy::ChargeAware,
        RefreshPolicy::Conventional,
        RefreshPolicy::NaiveSram,
    ]
}

#[test]
fn pooled_differential_sweep_matches_serial() {
    let config = SystemConfig::small_test();
    let cases: Vec<(RefreshPolicy, u64)> = policies()
        .iter()
        .flat_map(|&policy| {
            (0..4u64).map(move |i| {
                (
                    policy,
                    base_seed() ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                )
            })
        })
        .collect();
    let run_case = |&(policy, seed): &(RefreshPolicy, u64)| {
        let commands = generate_commands(&config, seed, 96);
        run_differential(&config, &DiffSetup::clean(policy), &commands)
            .expect("harness setup must succeed")
            .map(|report| report.to_string())
    };
    let serial: Vec<Option<String>> = cases.iter().map(run_case).collect();
    let pooled = zr_par::run_jobs(4, cases.len(), |i| run_case(&cases[i]));
    assert_eq!(
        serial, pooled,
        "pool and serial sweeps reached different verdicts"
    );
    for ((policy, seed), verdict) in cases.iter().zip(&serial) {
        assert!(
            verdict.is_none(),
            "{policy:?} seed {seed:#x} diverged: {}",
            verdict.as_deref().unwrap_or_default()
        );
    }
}
