//! Conformance of the timing layer: internal-consistency invariants,
//! bit-exact determinism, and the monotone coupling between refresh
//! skipping and refresh-induced stalls that Fig. 17 rests on.

use zr_timing::{MemoryTimingSim, RefreshDurations, RequestGenerator, TimingStats};
use zr_types::SystemConfig;

fn stream(config: &SystemConfig, seed: u64, count: usize) -> Vec<zr_timing::MemoryRequest> {
    let mut generator = RequestGenerator::new(config, seed);
    generator.arrival_interval_ns(6.0).row_locality(0.6);
    generator.generate(count).expect("request stream")
}

fn run(config: &SystemConfig, durations: RefreshDurations, seed: u64) -> TimingStats {
    let mut sim = MemoryTimingSim::new(config, durations).expect("sim");
    let stats = sim.process(&stream(config, seed, 4000)).expect("process");
    assert_eq!(
        stats.invariant_violation(),
        None,
        "timing stats violated an internal invariant"
    );
    stats
}

/// The same request stream through two fresh simulators produces
/// bit-identical statistics — the property the golden figures and every
/// differential comparison in this crate silently rely on.
#[test]
fn identical_streams_are_bit_deterministic() {
    let config = SystemConfig::small_test();
    for durations in [
        RefreshDurations::Conventional,
        RefreshDurations::Uniform {
            refreshed_fraction: 0.37,
        },
    ] {
        let a = run(&config, durations.clone(), 42);
        let b = run(&config, durations, 42);
        assert_eq!(a, b, "two fresh simulators disagreed on one stream");
    }
}

/// Refresh-induced waiting is monotone in the refreshed fraction, and
/// the conventional profile is its upper endpoint.
#[test]
fn refresh_wait_is_monotone_in_refreshed_fraction() {
    let config = SystemConfig::small_test();
    let fractions = [0.0, 0.25, 0.5, 0.75, 1.0];
    let waits: Vec<f64> = fractions
        .iter()
        .map(|&f| {
            run(
                &config,
                RefreshDurations::Uniform {
                    refreshed_fraction: f,
                },
                7,
            )
            .refresh_wait_ns
        })
        .collect();
    for (w, f) in waits.windows(2).zip(fractions.windows(2)) {
        assert!(
            w[0] <= w[1] + 1e-9,
            "refresh wait decreased from fraction {} ({} ns) to {} ({} ns)",
            f[0],
            w[0],
            f[1],
            w[1]
        );
    }
    let conventional = run(&config, RefreshDurations::Conventional, 7).refresh_wait_ns;
    assert!(
        (conventional - waits[4]).abs() <= 1e-6 * conventional.max(1.0),
        "Uniform {{ 1.0 }} must match Conventional: {} vs {conventional}",
        waits[4]
    );
    assert!(
        waits[0] < conventional,
        "skipping every row must reduce refresh waiting"
    );
}

/// A per-set profile of constant fraction `f` is behaviourally identical
/// to `Uniform {{ f }}` — the two encodings of the same physical claim
/// may not drift apart.
#[test]
fn per_set_profile_matches_uniform_at_constant_fraction() {
    let config = SystemConfig::small_test();
    let geom = config.geometry();
    let sets = (geom.num_banks() as u64 * geom.ar_sets_per_bank()) as usize;
    for f in [0.0, 0.37, 1.0] {
        let uniform = run(
            &config,
            RefreshDurations::Uniform {
                refreshed_fraction: f,
            },
            11,
        );
        let per_set = run(&config, RefreshDurations::PerSet(vec![f; sets]), 11);
        assert_eq!(
            uniform, per_set,
            "constant PerSet({f}) diverged from Uniform"
        );
    }
}

/// Request generation itself is deterministic and seed-sensitive.
#[test]
fn request_streams_are_reproducible_per_seed() {
    let config = SystemConfig::small_test();
    assert_eq!(stream(&config, 5, 256), stream(&config, 5, 256));
    assert_ne!(stream(&config, 5, 256), stream(&config, 6, 256));
}
