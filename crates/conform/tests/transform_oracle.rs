//! Law-based conformance of the value-transformation pipeline: exact
//! round-trip over every stage combination × adversarial content, plus
//! the charge-cost laws the paper's savings argument rests on.

use proptest::prelude::*;
use zr_conform::{all_transform_configs, ContentFamily};
use zr_transform::ValueTransformer;
use zr_types::geometry::RowIndex;
use zr_types::{CellType, SystemConfig, TransformConfig};

fn transformer(stages: TransformConfig) -> ValueTransformer {
    let mut config = SystemConfig::small_test();
    config.transform = stages;
    ValueTransformer::new(&config).expect("transformer")
}

/// Rows straddling every cell-block boundary of the small-test geometry
/// (16-row blocks): first/last row of the first true block, both sides
/// of the true→anti and anti→true edges.
fn boundary_rows() -> [RowIndex; 6] {
    [
        RowIndex(0),
        RowIndex(15),
        RowIndex(16),
        RowIndex(31),
        RowIndex(32),
        RowIndex(47),
    ]
}

fn line_bytes() -> usize {
    SystemConfig::small_test().line.line_bytes
}

/// `decode(encode(x)) == x` for all 16 stage combinations, all nine
/// content families, several seeds, and rows of both cell polarities.
#[test]
fn round_trip_is_exact_for_every_stage_combination() {
    for stages in all_transform_configs() {
        let t = transformer(stages);
        for family in ContentFamily::all() {
            for seed in 0..4u64 {
                let line = family.generate(seed, line_bytes());
                for row in boundary_rows() {
                    let encoded = t.encode(&line, row).expect("encode");
                    let decoded = t.decode(&encoded, row).expect("decode");
                    assert_eq!(
                        decoded, line,
                        "round-trip broke: stages {stages:?}, {family:?}, seed {seed}, row {row:?}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn round_trip_holds_on_arbitrary_content(
        seed in any::<u64>(),
        stage_bits in 0u8..16,
        row in 0u64..64,
    ) {
        let stages = all_transform_configs()[stage_bits as usize];
        let t = transformer(stages);
        let line = ContentFamily::Random.generate(seed, line_bytes());
        let encoded = t.encode(&line, RowIndex(row)).expect("encode");
        let decoded = t.decode(&encoded, RowIndex(row)).expect("decode");
        prop_assert_eq!(decoded, line);
    }
}

/// Bit-plane transposition and rotation are bit permutations: toggling
/// them must not change the charged-cell cost of any line.
#[test]
fn charge_cost_is_invariant_under_bit_permutation_stages() {
    for ebdi in [false, true] {
        for cell_aware in [false, true] {
            let variants: Vec<ValueTransformer> = [false, true]
                .iter()
                .flat_map(|&bit_plane| {
                    [false, true].map(|rotation| {
                        transformer(TransformConfig {
                            ebdi,
                            bit_plane,
                            rotation,
                            cell_aware,
                        })
                    })
                })
                .collect();
            for family in ContentFamily::all() {
                for seed in 0..3u64 {
                    let line = family.generate(seed, line_bytes());
                    for row in boundary_rows() {
                        let costs: Vec<u64> = variants
                            .iter()
                            .map(|t| {
                                let encoded = t.encode(&line, row).expect("encode");
                                t.charged_cell_count(&encoded, row)
                            })
                            .collect();
                        assert!(
                            costs.windows(2).all(|w| w[0] == w[1]),
                            "permutation stages changed cost: ebdi {ebdi}, cell_aware \
                             {cell_aware}, {family:?}, seed {seed}, row {row:?}: {costs:?}"
                        );
                    }
                }
            }
        }
    }
}

/// With cell-aware inversion the cost of a line is independent of the
/// cell polarity of the row it lands on — the stage exists precisely to
/// make anti-cell rows as cheap as true-cell rows (§IV-A).
#[test]
fn cell_aware_inversion_equalizes_polarity() {
    let config = SystemConfig::small_test();
    let true_row = RowIndex(0);
    let anti_row = RowIndex(config.dram.cell_block_rows); // first anti block
    for stages in all_transform_configs() {
        let t = transformer(stages);
        assert_eq!(t.cell_type(true_row), CellType::True);
        assert_eq!(t.cell_type(anti_row), CellType::Anti);
        for family in ContentFamily::all() {
            let line = family.generate(17, line_bytes());
            let cost_true = {
                let e = t.encode(&line, true_row).expect("encode");
                t.charged_cell_count(&e, true_row)
            };
            let cost_anti = {
                let e = t.encode(&line, anti_row).expect("encode");
                t.charged_cell_count(&e, anti_row)
            };
            if stages.cell_aware {
                assert_eq!(
                    cost_true, cost_anti,
                    "cell-aware cost depends on polarity: stages {stages:?}, {family:?}"
                );
            } else {
                // Without the stage the two polarities split the total:
                // every cell charged on one side is discharged on the other.
                let total = 8 * line_bytes() as u64;
                assert_eq!(
                    cost_true + cost_anti,
                    total,
                    "costs must be complementary without cell-awareness: \
                     stages {stages:?}, {family:?}"
                );
            }
        }
    }
}

/// A zero page is free everywhere under cell-aware encoding; without it,
/// zeros pay the *full* cost on anti-cell rows — the paper's motivating
/// asymmetry.
#[test]
fn all_zeros_cost_pins_the_cell_asymmetry() {
    let config = SystemConfig::small_test();
    let zeros = ContentFamily::AllZeros.generate(0, line_bytes());
    let total = 8 * line_bytes() as u64;
    let anti_row = RowIndex(config.dram.cell_block_rows);
    for stages in all_transform_configs() {
        let t = transformer(stages);
        for row in boundary_rows() {
            let encoded = t.encode(&zeros, row).expect("encode");
            let cost = t.charged_cell_count(&encoded, row);
            if stages.cell_aware {
                assert_eq!(cost, 0, "zeros not free: stages {stages:?}, row {row:?}");
                assert!(
                    t.is_discharged(&encoded, row),
                    "zero line must read as fully discharged: stages {stages:?}, row {row:?}"
                );
            } else if t.cell_type(row) == CellType::True {
                assert_eq!(
                    cost, 0,
                    "zeros on true cells: stages {stages:?}, row {row:?}"
                );
            } else {
                assert_eq!(
                    cost, total,
                    "zeros must pay full cost on anti cells: stages {stages:?}, row {row:?}"
                );
            }
        }
        // And the flip side: all-ones on an anti row without
        // cell-awareness is free (the cells are already discharged).
        if !stages.ebdi && !stages.cell_aware {
            let ones = ContentFamily::AllOnes.generate(0, line_bytes());
            let encoded = t.encode(&ones, anti_row).expect("encode");
            assert_eq!(t.charged_cell_count(&encoded, anti_row), 0);
        }
    }
}

/// Without EBDI every stage is a bit permutation or inversion, so the
/// pipeline is bit-wise monotone in logical content: clearing logical
/// bits (`a = b & mask`) can only lower the charge cost. (EBDI breaks
/// per-line monotonicity by design — `encode_delta` can expand a small
/// popcount difference — which is exactly why it is excluded here.)
#[test]
fn masked_content_monotonicity_without_ebdi() {
    let configs: Vec<TransformConfig> = all_transform_configs()
        .into_iter()
        .filter(|c| !c.ebdi)
        .collect();
    for stages in configs {
        let t = transformer(stages);
        // Monotonicity is stated in the logical (true-cell) domain; on
        // anti rows it only survives when cell-awareness re-aligns the
        // polarity, so pick rows accordingly.
        let rows: Vec<RowIndex> = if stages.cell_aware {
            boundary_rows().to_vec()
        } else {
            boundary_rows()
                .into_iter()
                .filter(|&r| t.cell_type(r) == CellType::True)
                .collect()
        };
        for seed in 0..8u64 {
            let b = ContentFamily::Random.generate(seed, line_bytes());
            let mask = ContentFamily::Random.generate(seed ^ 0xDEAD_BEEF, line_bytes());
            let a: Vec<u8> = b.iter().zip(&mask).map(|(x, m)| x & m).collect();
            for &row in &rows {
                let cost_a = {
                    let e = t.encode(&a, row).expect("encode");
                    t.charged_cell_count(&e, row)
                };
                let cost_b = {
                    let e = t.encode(&b, row).expect("encode");
                    t.charged_cell_count(&e, row)
                };
                assert!(
                    cost_a <= cost_b,
                    "clearing bits raised the cost: stages {stages:?}, seed {seed}, \
                     row {row:?}: {cost_a} > {cost_b}"
                );
            }
        }
    }
}

/// EBDI never hurts constant-word lines: all deltas collapse to zero, so
/// the encoded line costs at most what the raw line costs. This is the
/// degenerate case behind the paper's zero-page numbers.
#[test]
fn ebdi_never_loses_on_constant_word_lines() {
    for family in ContentFamily::all()
        .into_iter()
        .filter(|f| f.constant_words())
    {
        let line = family.generate(0, line_bytes());
        for base in all_transform_configs().into_iter().filter(|c| !c.ebdi) {
            let without = transformer(base);
            let with = transformer(TransformConfig { ebdi: true, ..base });
            for row in boundary_rows() {
                if !base.cell_aware && without.cell_type(row) == CellType::Anti {
                    // Raw anti-row costs are complement-valued; the
                    // comparison only makes sense in the logical domain.
                    continue;
                }
                let cost_without = {
                    let e = without.encode(&line, row).expect("encode");
                    without.charged_cell_count(&e, row)
                };
                let cost_with = {
                    let e = with.encode(&line, row).expect("encode");
                    with.charged_cell_count(&e, row)
                };
                assert!(
                    cost_with <= cost_without,
                    "EBDI lost on {family:?}: stages {base:?}, row {row:?}: \
                     {cost_with} > {cost_without}"
                );
            }
        }
    }
}
