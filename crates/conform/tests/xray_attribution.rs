//! Law-based conformance of the charge-domain stage attribution: the
//! per-stage charged-cell deltas the xray capture records for
//! `encode_in_place` must telescope — sum *exactly* to the line's total
//! charged-cell reduction — for every stage combination and over
//! adversarial content. The attribution is measured (snapshots of
//! `charged_cell_count` between stages), not derived, so this holds by
//! construction; the tests pin it against bookkeeping regressions
//! (wrong stage index, missed stage, combo mixups).

use std::sync::Arc;

use proptest::prelude::*;
use zr_conform::{all_transform_configs, ContentFamily};
use zr_transform::ValueTransformer;
use zr_types::geometry::RowIndex;
use zr_types::{CellType, SystemConfig, TransformConfig};
use zr_xray::{stage_combo, XrayRecorder, XraySnapshot};

fn transformer(stages: TransformConfig) -> (ValueTransformer, Arc<XrayRecorder>) {
    let mut config = SystemConfig::small_test();
    config.transform = stages;
    let mut t = ValueTransformer::new(&config).expect("transformer");
    let xray = Arc::new(XrayRecorder::memory_with_cap(8));
    t.set_xray(Arc::clone(&xray));
    (t, xray)
}

/// Rows of both cell polarities in the small-test geometry (16-row
/// cell blocks: 0..16 true, 16..32 anti).
fn rows() -> [RowIndex; 4] {
    [RowIndex(0), RowIndex(15), RowIndex(16), RowIndex(31)]
}

fn line_bytes() -> usize {
    SystemConfig::small_test().line.line_bytes
}

/// Sums `(lines, charged_before, charged_after)` over a snapshot's
/// stage rows, asserting each row telescopes on the way.
fn telescoped_totals(snap: &XraySnapshot) -> (u64, u64, u64) {
    let (mut lines, mut before, mut after) = (0u64, 0u64, 0u64);
    for s in &snap.stages {
        assert!(
            s.deltas_sum_to_total(),
            "combo {} does not telescope: {s:?}",
            s.combo
        );
        lines += s.lines;
        before += s.charged_before;
        after += s.charged_after;
    }
    (lines, before, after)
}

/// Every stage combination × every content family × both cell
/// polarities: the recorded attribution telescopes and its endpoints
/// match independently computed charged-cell counts.
#[test]
fn attribution_telescopes_for_every_stage_combination() {
    for stages in all_transform_configs() {
        let (t, xray) = transformer(stages);
        let (mut encoded_lines, mut expect_before, mut expect_after) = (0u64, 0u64, 0u64);
        for family in ContentFamily::all() {
            for seed in 0..3u64 {
                let line = family.generate(seed, line_bytes());
                for row in rows() {
                    expect_before += t.charged_cell_count(&line, row);
                    let enc = t.encode(&line, row).expect("encode");
                    expect_after += t.charged_cell_count(&enc, row);
                    encoded_lines += 1;
                }
            }
        }
        let snap = xray.snapshot();
        let (lines, before, after) = telescoped_totals(&snap);
        assert_eq!(lines, encoded_lines, "stages {stages:?}");
        assert_eq!(
            (before, after),
            (expect_before, expect_after),
            "attribution endpoints drifted: stages {stages:?}"
        );
        // The recorded combos carry the configured stage bits, with the
        // inversion bit set only when cell-aware inversion actually ran
        // (anti rows of a cell-aware pipeline).
        let expected_combos: Vec<u8> = if stages.cell_aware {
            let mut c = vec![
                stage_combo(stages.ebdi, stages.bit_plane, false, stages.rotation),
                stage_combo(stages.ebdi, stages.bit_plane, true, stages.rotation),
            ];
            c.sort_unstable();
            c.dedup();
            c
        } else {
            vec![stage_combo(
                stages.ebdi,
                stages.bit_plane,
                false,
                stages.rotation,
            )]
        };
        let combos: Vec<u8> = snap.stages.iter().map(|s| s.combo).collect();
        assert_eq!(combos, expected_combos, "stages {stages:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]
    /// One arbitrary line through one arbitrary stage combination: the
    /// single recorded stage row is exact — endpoints match the
    /// measured charged-cell counts, deltas sum to their difference,
    /// and the combo encodes what actually ran for that row.
    #[test]
    fn single_line_attribution_is_exact(
        seed in any::<u64>(),
        family_at in 0usize..9,
        stage_bits in 0u8..16,
        row in 0u64..64,
    ) {
        let stages = all_transform_configs()[stage_bits as usize];
        let (t, xray) = transformer(stages);
        let line = ContentFamily::all()[family_at].generate(seed, line_bytes());
        let row = RowIndex(row);
        let before = t.charged_cell_count(&line, row);
        let enc = t.encode(&line, row).expect("encode");
        let after = t.charged_cell_count(&enc, row);

        let snap = xray.snapshot();
        prop_assert_eq!(snap.stages.len(), 1);
        let s = &snap.stages[0];
        prop_assert_eq!(s.lines, 1);
        prop_assert_eq!((s.charged_before, s.charged_after), (before, after));
        prop_assert!(s.deltas_sum_to_total());
        prop_assert_eq!(
            s.total_reduction(),
            before as i64 - after as i64
        );
        let inverted = stages.cell_aware && t.cell_type(row) == CellType::Anti;
        prop_assert_eq!(
            s.combo,
            stage_combo(stages.ebdi, stages.bit_plane, inverted, stages.rotation)
        );
    }
}
