//! Differential battery: packed discharged-bitmap path vs the retained
//! scalar byte-scan oracle.
//!
//! Two `DramRank`s receive an identical command stream; one is pinned to
//! the scalar reference path with `set_force_scalar(true)` (available
//! under the `scalar-oracle` feature). Every window's `WindowStats`,
//! every per-set `ArOutcome` skip decision, and the discharged counts at
//! rank, bank, and chip-row granularity must be bit-identical.
//!
//! The deterministic sweep always executes ≥ 256 reproducible cases
//! (seeds × policies × write patterns × geometry variants); the
//! `proptest!` block layers shrinking exploration on top, honouring the
//! `PROPTEST_RNG_SEED` pin in CI.

use proptest::prelude::*;
use zr_dram::{DramRank, RefreshEngine, RefreshPolicy, WindowStats};
use zr_types::geometry::{BankId, ChipId, RowIndex};
use zr_types::SystemConfig;

/// Splitmix64 step: the test's own seed stream, independent of any
/// external RNG crate so the case list is pinned by construction.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Geometry variants mirroring the differential_dram sweep: stock small
/// config, anti-cells-first phase, smaller cell blocks, four banks.
fn config_variants() -> Vec<SystemConfig> {
    let base = SystemConfig::small_test();
    let mut anti_first = base.clone();
    anti_first.dram.anti_cells_first = true;
    let mut small_blocks = base.clone();
    small_blocks.dram.cell_block_rows = 8;
    let mut four_banks = base.clone();
    four_banks.dram.num_banks = 4;
    for cfg in [&anti_first, &small_blocks, &four_banks] {
        cfg.validate().expect("variant config must validate");
    }
    vec![base, anti_first, small_blocks, four_banks]
}

fn policies() -> [RefreshPolicy; 3] {
    [
        RefreshPolicy::ChargeAware,
        RefreshPolicy::Conventional,
        RefreshPolicy::NaiveSram,
    ]
}

/// The write-content patterns the sweep rotates through. Zeros/ones land
/// exactly on the true/anti discharged byte patterns, so they exercise
/// the charged-byte zero-crossing bookkeeping; the sparse pattern flips
/// single bytes back and forth across the threshold.
#[derive(Clone, Copy, Debug)]
enum WritePattern {
    Random,
    Zeros,
    Ones,
    SparseFlip,
    Alternating,
}

const PATTERNS: [WritePattern; 5] = [
    WritePattern::Random,
    WritePattern::Zeros,
    WritePattern::Ones,
    WritePattern::SparseFlip,
    WritePattern::Alternating,
];

fn fill_line(pattern: WritePattern, rng: &mut u64, line: &mut [u8]) {
    match pattern {
        WritePattern::Random => {
            for b in line.iter_mut() {
                *b = splitmix(rng) as u8;
            }
        }
        WritePattern::Zeros => line.fill(0x00),
        WritePattern::Ones => line.fill(0xFF),
        WritePattern::SparseFlip => {
            let base = if splitmix(rng) & 1 == 0 { 0x00 } else { 0xFF };
            line.fill(base);
            let idx = (splitmix(rng) as usize) % line.len();
            line[idx] ^= 0xA5;
        }
        WritePattern::Alternating => {
            for (i, b) in line.iter_mut().enumerate() {
                *b = if i % 2 == 0 { 0x0F } else { 0xF0 };
            }
        }
    }
}

/// Asserts every discharge observable agrees between the two ranks.
fn assert_state_identical(packed: &DramRank, scalar: &DramRank, ctx: &str) {
    assert_eq!(
        packed.count_discharged_chip_rows(),
        scalar.count_discharged_chip_rows(),
        "{ctx}: rank-level discharged count diverged"
    );
    let geom = packed.geometry();
    for bank in 0..geom.num_banks() {
        assert_eq!(
            packed.count_discharged_chip_rows_in_bank(BankId(bank)),
            scalar.count_discharged_chip_rows_in_bank(BankId(bank)),
            "{ctx}: bank {bank} discharged count diverged"
        );
        for chip in 0..geom.num_chips() {
            for row in 0..geom.rows_per_bank() {
                let p = packed.chip_row_is_discharged(ChipId(chip), BankId(bank), RowIndex(row));
                let s = scalar.chip_row_is_discharged(ChipId(chip), BankId(bank), RowIndex(row));
                assert_eq!(p, s, "{ctx}: chip {chip} bank {bank} row {row} diverged");
            }
        }
    }
}

/// Runs one case: an identical op stream through a packed rank and a
/// scalar-forced rank, comparing stats, skip decisions, and counts after
/// every window.
fn run_case(config: &SystemConfig, policy: RefreshPolicy, pattern: WritePattern, seed: u64) {
    let mut packed = DramRank::new(config).expect("packed rank");
    let mut scalar = DramRank::new(config).expect("scalar rank");
    scalar.set_force_scalar(true);
    let mut packed_engine = RefreshEngine::new(config, policy).expect("packed engine");
    let mut scalar_engine = RefreshEngine::new(config, policy).expect("scalar engine");

    let geom = packed.geometry().clone();
    let mut rng = seed;
    let mut line = vec![0u8; geom.line_bytes()];
    let mut packed_total = WindowStats::default();
    let mut scalar_total = WindowStats::default();

    for window in 0..3u32 {
        for _ in 0..16 {
            let bank = BankId((splitmix(&mut rng) as usize) % geom.num_banks());
            let row = RowIndex(splitmix(&mut rng) % geom.rows_per_bank());
            let slot = (splitmix(&mut rng) as usize) % geom.lines_per_row();
            match splitmix(&mut rng) % 8 {
                0 => {
                    packed.cleanse_row(bank, row).expect("cleanse packed");
                    scalar.cleanse_row(bank, row).expect("cleanse scalar");
                }
                1 => {
                    let chip = ChipId((splitmix(&mut rng) as usize) % geom.num_chips());
                    packed
                        .force_charge_chip_row(chip, bank, row)
                        .expect("force packed");
                    scalar
                        .force_charge_chip_row(chip, bank, row)
                        .expect("force scalar");
                    packed_engine.note_write(&packed, bank, row);
                    scalar_engine.note_write(&scalar, bank, row);
                }
                _ => {
                    fill_line(pattern, &mut rng, &mut line);
                    packed
                        .write_encoded_line(bank, row, slot, &line)
                        .expect("write packed");
                    scalar
                        .write_encoded_line(bank, row, slot, &line)
                        .expect("write scalar");
                    packed_engine.note_write(&packed, bank, row);
                    scalar_engine.note_write(&scalar, bank, row);
                }
            }
        }
        // Probe a few AR sets on engine clones so per-set skip decisions
        // are compared at the finest observable granularity without
        // perturbing the staggered schedule of the real engines.
        for probe in 0..4 {
            let bank = BankId((splitmix(&mut rng) as usize) % geom.num_banks());
            let set = splitmix(&mut rng) % geom.ar_rows().max(1);
            let p = packed_engine.clone().process_ar(&packed, bank, set);
            let s = scalar_engine.clone().process_ar(&scalar, bank, set);
            assert_eq!(
                p, s,
                "seed {seed:#x} window {window} probe {probe}: ArOutcome diverged"
            );
        }
        let pw = packed_engine.run_window(&mut packed);
        let sw = scalar_engine.run_window(&mut scalar);
        assert_eq!(
            pw, sw,
            "seed {seed:#x} window {window}: WindowStats diverged"
        );
        packed_total.accumulate(&pw);
        scalar_total.accumulate(&sw);
        assert_state_identical(&packed, &scalar, &format!("seed {seed:#x} window {window}"));
    }
    assert_eq!(
        packed_total, scalar_total,
        "seed {seed:#x}: accumulated stats diverged"
    );
    assert_eq!(
        packed_engine.totals(),
        scalar_engine.totals(),
        "seed {seed:#x}: engine totals diverged"
    );
}

/// ≥ 256 pinned cases: 4 geometry variants × 3 policies × 5 patterns ×
/// 5 seeds = 300 combinations, each fully deterministic.
#[test]
fn deterministic_sweep_packed_matches_scalar() {
    let variants = config_variants();
    let mut case = 0u64;
    for (vi, config) in variants.iter().enumerate() {
        for (pi, policy) in policies().iter().enumerate() {
            for (wi, pattern) in PATTERNS.iter().enumerate() {
                for s in 0..5u64 {
                    let seed = 0xD1FF_0000_0000_0000
                        | ((vi as u64) << 24)
                        | ((pi as u64) << 16)
                        | ((wi as u64) << 8)
                        | s;
                    run_case(config, *policy, *pattern, seed);
                    case += 1;
                }
            }
        }
    }
    assert!(case >= 256, "sweep shrank below the contract: {case} cases");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn proptest_packed_matches_scalar(
        seed in any::<u64>(),
        variant in 0usize..4,
        policy_pick in 0usize..3,
        pattern_pick in 0usize..PATTERNS.len(),
    ) {
        let config = config_variants()[variant].clone();
        run_case(&config, policies()[policy_pick], PATTERNS[pattern_pick], seed);
    }
}
