//! Golden-figure regression gates.
//!
//! Each test reruns a headline figure of the paper's evaluation at the
//! dedicated `ExperimentConfig::conform_test()` scale, renders the result
//! to JSON and compares it against the blessed snapshot in
//! `tests/golden/` with figure tolerances. `ZR_BLESS=1` re-blesses.
//!
//! The benchmark slice is chosen to pin the figure's *shape*, not just a
//! mean: the two best reducers (gemsFDTD, sphinx3), two of the worst
//! (omnetpp, sp.C), the most memory-bound workload (mcf) and one TPC-H
//! query (tpch-q6).

use zr_bench::figures;
use zr_conform::{golden_check, Json, Tolerance};
use zr_sim::experiments::ExperimentConfig;
use zr_workloads::Benchmark;

fn subset() -> [Benchmark; 6] {
    [
        Benchmark::GemsFdtd,
        Benchmark::Sphinx3,
        Benchmark::Omnetpp,
        Benchmark::SpC,
        Benchmark::Mcf,
        Benchmark::TpchQ6,
    ]
}

fn exp() -> ExperimentConfig {
    ExperimentConfig::conform_test()
}

fn alloc_rows_to_json(rows: &[(String, [f64; 4])]) -> Json {
    Json::Obj(
        rows.iter()
            .map(|(name, cells)| {
                (
                    name.clone(),
                    Json::Arr(cells.iter().map(|&v| Json::Num(v)).collect()),
                )
            })
            .collect(),
    )
}

#[test]
fn golden_fig14_refresh_reduction() {
    let rows = figures::fig14_refresh_reduction_for(&subset(), &exp()).expect("fig14");
    let doc = alloc_rows_to_json(&rows);
    // Beyond the snapshot: the figure's own semantics must hold — the
    // mechanism only ever *removes* refreshes, so every normalized value
    // is in (0, 1], and lower allocation never refreshes more.
    for (name, cells) in &rows {
        for &v in cells {
            assert!(
                (0.0..=1.0).contains(&v),
                "{name}: normalized {v} out of range"
            );
        }
        for w in cells.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "{name}: lower allocation increased refreshes: {cells:?}"
            );
        }
    }
    if let Err(e) = golden_check("fig14_refresh_reduction", &doc, Tolerance::figures()) {
        panic!("{e}");
    }
}

#[test]
fn golden_fig15_energy() {
    let rows = figures::fig15_energy_for(&subset(), &exp()).expect("fig15");
    let doc = alloc_rows_to_json(&rows);
    for (name, cells) in &rows {
        for &v in cells {
            assert!(v > 0.0, "{name}: energy share {v} must stay positive");
        }
    }
    if let Err(e) = golden_check("fig15_energy", &doc, Tolerance::figures()) {
        panic!("{e}");
    }
}

#[test]
fn golden_fig16_temperature() {
    let rows = figures::fig16_temperature_for(&subset(), &exp()).expect("fig16");
    let doc = Json::Obj(
        rows.iter()
            .map(|(name, ext, norm)| {
                (
                    name.clone(),
                    Json::Obj(vec![
                        ("ext_32ms".to_string(), Json::Num(*ext)),
                        ("norm_64ms".to_string(), Json::Num(*norm)),
                    ]),
                )
            })
            .collect(),
    );
    if let Err(e) = golden_check("fig16_temperature", &doc, Tolerance::figures()) {
        panic!("{e}");
    }
}

#[test]
fn golden_table_overheads() {
    let rows = figures::table_overheads();
    let doc = Json::Arr(
        rows.iter()
            .map(
                |&(cap_gb, naive_bytes, access_bytes, naive_mw, access_mw)| {
                    Json::Obj(vec![
                        ("capacity_gb".to_string(), Json::Num(cap_gb as f64)),
                        ("naive_bytes".to_string(), Json::Num(naive_bytes as f64)),
                        ("access_bytes".to_string(), Json::Num(access_bytes as f64)),
                        ("naive_leak_mw".to_string(), Json::Num(naive_mw)),
                        ("access_leak_mw".to_string(), Json::Num(access_mw)),
                    ])
                },
            )
            .collect(),
    );
    // The table is analytic: structure sizes are exact integers and the
    // leakage model is a closed form, so the gate is tight.
    if let Err(e) = golden_check(
        "table_overheads",
        &doc,
        Tolerance {
            rel: 1e-9,
            abs: 0.0,
        },
    ) {
        panic!("{e}");
    }
}
