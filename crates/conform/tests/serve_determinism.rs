//! Serving-invariant gate: a cache hit is byte-identical to a cold run.
//!
//! For each fig14-subset configuration the battery runs the real
//! simulator through the server three ways — cold (miss), cached (hit),
//! and cold again after eviction — and demands all three produce the
//! same bytes. The served bytes' FNV-1a must equal the `report`
//! artifact checksum in the run manifest the server wrote, the manifest
//! must survive `zr-lens audit`, and the manifests of the two cold runs
//! must agree on every non-volatile fact.
//!
//! This is the conformance pin for the whole serving layer: if any
//! state leaks between runs (cache residue, telemetry bleed, pool-width
//! sensitivity, wall-clock contamination of the result document), one
//! of these byte comparisons breaks.

use std::path::PathBuf;

use zr_serve::{CacheOutcome, Figure, Scenario, Server, ServerConfig, SweepRequest};
use zr_sim::experiments::ExperimentConfig;
use zr_workloads::Benchmark;

/// The golden-figure benchmark subset the conformance gates run.
const SUBSET: [Benchmark; 6] = [
    Benchmark::GemsFdtd,
    Benchmark::Sphinx3,
    Benchmark::Omnetpp,
    Benchmark::SpC,
    Benchmark::Mcf,
    Benchmark::TpchQ6,
];

/// Small-but-real experiment scale: one window over 1 MiB keeps each
/// cold simulation around 100 ms in a debug build.
fn gate_config() -> ExperimentConfig {
    ExperimentConfig {
        capacity_bytes: 1 << 20,
        windows: 1,
        seed: 0x00C0_F042,
        ..ExperimentConfig::default()
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zr-serve-conform-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn manifest_path(lens_dir: &std::path::Path, key: u64) -> PathBuf {
    lens_dir
        .join(format!("serve-{}", zr_lens::hex64(key)))
        .join("manifest.json")
}

#[test]
fn cold_hit_cold_are_byte_identical_per_config() {
    let lens_dir = scratch_dir("fig14");
    let server = Server::simulator(ServerConfig {
        cache_entries: SUBSET.len(),
        workers: 2,
        lens_dir: Some(lens_dir.clone()),
    });
    for bench in SUBSET {
        let request = SweepRequest::new(
            Figure::Fig14Refresh,
            vec![bench],
            Scenario::Full,
            gate_config(),
        );
        let key = request.key();

        let cold = server.submit(request.clone()).wait().unwrap();
        assert_eq!(
            cold.outcome,
            CacheOutcome::Miss,
            "{}: first run is cold",
            bench.name()
        );
        let first_manifest = zr_lens::Manifest::load(&manifest_path(&lens_dir, key))
            .expect("manifest after cold run");

        let hit = server.submit(request.clone()).wait().unwrap();
        assert_eq!(
            hit.outcome,
            CacheOutcome::Hit,
            "{}: second run hits",
            bench.name()
        );
        assert_eq!(
            hit.bytes,
            cold.bytes,
            "{}: hit bytes must equal cold bytes",
            bench.name()
        );

        assert!(
            server.invalidate(key),
            "{}: evict the cached entry",
            bench.name()
        );
        let recold = server.submit(request).wait().unwrap();
        assert_eq!(
            recold.outcome,
            CacheOutcome::Miss,
            "{}: post-evict run is cold again",
            bench.name()
        );
        assert_eq!(
            recold.bytes,
            cold.bytes,
            "{}: cold ≡ cold-again must hold byte-for-byte",
            bench.name()
        );

        // The manifest's report artifact checksums the served bytes.
        let report = first_manifest
            .artifact("report")
            .expect("report artifact in served manifest");
        assert_eq!(
            report.fnv,
            zr_lens::fnv64(&cold.bytes),
            "{}: manifest checksum must match served bytes",
            bench.name()
        );
        assert_eq!(report.bytes, cold.bytes.len() as u64);
        assert_eq!(first_manifest.config_hash, key);
        assert_eq!(first_manifest.figure, "fig14_refresh_reduction");
        assert!(
            first_manifest.totals.rows_refreshed + first_manifest.totals.rows_skipped > 0,
            "{}: a real simulation must have made refresh decisions",
            bench.name()
        );

        // The re-run overwrote the manifest; everything non-volatile
        // must have survived the overwrite byte-for-byte.
        let second_manifest =
            zr_lens::Manifest::load(&manifest_path(&lens_dir, key)).expect("manifest after re-run");
        assert_eq!(
            zr_prof::json::Json::to_pretty(&first_manifest.deterministic_json()),
            zr_prof::json::Json::to_pretty(&second_manifest.deterministic_json()),
            "{}: cold runs must write identical deterministic manifests",
            bench.name()
        );

        // And the served run must reconcile under the cross-layer audit.
        let audit = zr_lens::audit(&manifest_path(&lens_dir, key)).expect("audit served run");
        assert!(
            audit.is_ok(),
            "{}: zr-lens audit found mismatches:\n{}",
            bench.name(),
            audit.render()
        );
    }
    let _ = std::fs::remove_dir_all(&lens_dir);
}

#[test]
fn fig16_served_run_reconciles_and_repeats() {
    let lens_dir = scratch_dir("fig16");
    let server = Server::simulator(ServerConfig {
        cache_entries: 2,
        workers: 1,
        lens_dir: Some(lens_dir.clone()),
    });
    let request = SweepRequest::new(
        Figure::Fig16Temperature,
        vec![Benchmark::GemsFdtd, Benchmark::Mcf],
        Scenario::Paper,
        gate_config(),
    );
    let key = request.key();
    let cold = server.submit(request.clone()).wait().unwrap();
    assert_eq!(cold.outcome, CacheOutcome::Miss);
    assert!(server.invalidate(key));
    let recold = server.submit(request).wait().unwrap();
    assert_eq!(recold.outcome, CacheOutcome::Miss);
    assert_eq!(recold.bytes, cold.bytes, "fig16 cold runs must agree");

    let manifest = zr_lens::Manifest::load(&manifest_path(&lens_dir, key)).expect("fig16 manifest");
    assert_eq!(manifest.figure, "fig16_temperature");
    assert_eq!(
        manifest.artifact("report").expect("report artifact").fnv,
        zr_lens::fnv64(&cold.bytes)
    );
    let audit = zr_lens::audit(&manifest_path(&lens_dir, key)).expect("audit fig16 run");
    assert!(audit.is_ok(), "audit mismatches:\n{}", audit.render());
    let _ = std::fs::remove_dir_all(&lens_dir);
}

#[test]
fn servers_do_not_contaminate_each_other() {
    // Two independent servers, same request: the bytes must agree even
    // though one of them has served unrelated work first — nothing a
    // server does may leak into another's results.
    let request = SweepRequest::new(
        Figure::Fig14Refresh,
        vec![Benchmark::Mcf],
        Scenario::Bitbrains,
        gate_config(),
    );
    let fresh = Server::simulator(ServerConfig::default());
    let fresh_reply = fresh.submit(request.clone()).wait().unwrap();

    let busy = Server::simulator(ServerConfig::default());
    let unrelated = SweepRequest::new(
        Figure::Fig14Refresh,
        vec![Benchmark::TpchQ6],
        Scenario::Full,
        ExperimentConfig {
            seed: 0xD1FF,
            ..gate_config()
        },
    );
    busy.submit(unrelated).wait().unwrap();
    let busy_reply = busy.submit(request).wait().unwrap();
    assert_eq!(
        fresh_reply.bytes, busy_reply.bytes,
        "prior unrelated work must not change served bytes"
    );
    assert_eq!(fresh_reply.fnv, busy_reply.fnv);
}
