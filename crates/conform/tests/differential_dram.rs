//! Differential fuzz of `zr-dram` against the reference oracle.
//!
//! The deterministic sweep below always executes ≥ 256 reproducible
//! cases from its own seeded generator (override the base seed with
//! `ZR_CONFORM_SEED`, the case count with `ZR_CONFORM_CASES`); the
//! `proptest!` block layers property-based exploration with shrinking on
//! top of it. On any divergence the test panics with the full report
//! after persisting it for CI artifact upload.

use proptest::prelude::*;
use zr_conform::diff::{generate_commands, run_differential, Command, DiffSetup};
use zr_dram::{RefreshGranularity, RefreshPolicy};
use zr_types::{DramConfig, SystemConfig};

/// The geometry variants the sweep rotates through: the stock small
/// test config, the anti-cells-first phase, a smaller cell block (more
/// true/anti boundaries) and a four-bank split of the same capacity.
fn config_variants() -> Vec<SystemConfig> {
    let base = SystemConfig::small_test();
    let mut anti_first = base.clone();
    anti_first.dram.anti_cells_first = true;
    let mut small_blocks = base.clone();
    small_blocks.dram.cell_block_rows = 8;
    let mut four_banks = base.clone();
    four_banks.dram.num_banks = 4;
    for cfg in [&anti_first, &small_blocks, &four_banks] {
        cfg.validate().expect("variant config must validate");
    }
    vec![base, anti_first, small_blocks, four_banks]
}

fn policies() -> [RefreshPolicy; 3] {
    [
        RefreshPolicy::ChargeAware,
        RefreshPolicy::Conventional,
        RefreshPolicy::NaiveSram,
    ]
}

fn run_case(config: &SystemConfig, setup: &DiffSetup, seed: u64, len: usize) {
    let commands = generate_commands(config, seed, len);
    let report = run_differential(config, setup, &commands)
        .expect("harness setup must succeed")
        .inspect(|r| {
            r.persist(&format!("differential-seed-{seed}"));
        });
    if let Some(report) = report {
        panic!("seed {seed}: {report}");
    }
}

#[test]
fn deterministic_sweep_finds_no_divergence() {
    let base_seed: u64 = std::env::var("ZR_CONFORM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_C0DE);
    let cases: u64 = std::env::var("ZR_CONFORM_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let variants = config_variants();
    for case in 0..cases {
        let config = &variants[(case as usize) % variants.len()];
        let setup = DiffSetup {
            policy: policies()[(case as usize) % 3],
            granularity: if (case / 3) % 2 == 0 {
                RefreshGranularity::PerBank
            } else {
                RefreshGranularity::AllBank
            },
            engine_skew: 0,
            oracle_skew: 0,
        };
        run_case(config, &setup, base_seed.wrapping_add(case), 32);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn proptest_sequences_agree(
        seed in any::<u64>(),
        policy_pick in 0usize..3,
        allbank in any::<bool>(),
        variant in 0usize..4,
        len in 8usize..48,
    ) {
        let config = config_variants()[variant].clone();
        let setup = DiffSetup {
            policy: policies()[policy_pick],
            granularity: if allbank {
                RefreshGranularity::AllBank
            } else {
                RefreshGranularity::PerBank
            },
            engine_skew: 0,
            oracle_skew: 0,
        };
        let commands = generate_commands(&config, seed, len);
        let report = run_differential(&config, &setup, &commands).expect("setup");
        prop_assert!(report.is_none(), "seed {}: {}", seed, report.unwrap());
    }
}

/// The acceptance check of the whole harness: an off-by-one injected
/// into the production engine's staggered refresh counter MUST be caught,
/// and the report must name the exact command that exposed it.
#[test]
fn injected_stagger_off_by_one_is_caught_with_command_index() {
    let config = SystemConfig::small_test();
    // Charge exactly one chip's segment of row 10 so the chip↔row
    // pairing of the schedule is observable, scan it, then probe the AR
    // sets of row 10's step group one command at a time.
    let mut commands = vec![
        Command::WriteLine {
            bank: 0,
            row: 10,
            slot: 0,
            chip_mask: 0b0000_0100,
            fill_seed: 0x33,
        },
        Command::RunWindow,
    ];
    // Row 10's step group starts at step 8 (groups of k = 8 chips).
    let group = 8;
    for set in group..group + 8 {
        commands.push(Command::ProcessAr { bank: 0, set });
    }

    // Sanity: without the fault the exact same sequence agrees.
    let clean = run_differential(
        &config,
        &DiffSetup::clean(RefreshPolicy::ChargeAware),
        &commands,
    )
    .expect("setup");
    assert!(clean.is_none(), "clean run diverged: {}", clean.unwrap());

    let faulty = DiffSetup {
        policy: RefreshPolicy::ChargeAware,
        granularity: RefreshGranularity::PerBank,
        engine_skew: 1,
        oracle_skew: 0,
    };
    let report = run_differential(&config, &faulty, &commands)
        .expect("setup")
        .expect("the injected off-by-one must be caught");
    // The divergence must be pinned to one of the probing AR commands
    // (indices 2..10), not smeared over the run.
    assert!(
        (2..10).contains(&report.command_index),
        "diverged at unexpected command: {report}"
    );
    assert!(
        report.command.contains("ProcessAr"),
        "diverged on unexpected command kind: {report}"
    );
    let text = report.to_string();
    assert!(text.contains(&format!("command #{}", report.command_index)));
    // The report must cite flight-recorder records for offline debugging.
    assert!(
        !report.trace_tail.is_empty(),
        "no trace records cited: {report}"
    );
    assert!(
        report.persist("acceptance-stagger-off-by-one").is_some(),
        "report must be persistable for CI artifacts"
    );
}

/// The skew knob on the oracle side is caught symmetrically — the
/// harness does not privilege either implementation.
#[test]
fn oracle_side_skew_is_caught_too() {
    let config = SystemConfig::small_test();
    // A whole-window command aggregates over all AR sets, where a skew
    // only permutes the schedule — per-set probes are what expose it.
    let mut commands = vec![
        Command::WriteLine {
            bank: 1,
            row: 21,
            slot: 3,
            chip_mask: 0b0001_0000,
            fill_seed: 0x77,
        },
        Command::RunWindow,
    ];
    let group = (21 / 8) * 8;
    for set in group..group + 8 {
        commands.push(Command::ProcessAr { bank: 1, set });
    }
    let setup = DiffSetup {
        policy: RefreshPolicy::ChargeAware,
        granularity: RefreshGranularity::PerBank,
        engine_skew: 0,
        oracle_skew: 3,
    };
    let report = run_differential(&config, &setup, &commands)
        .expect("setup")
        .expect("oracle-side skew must diverge");
    // Chip 4's charged segment of row 21 sits at step 17 in the true
    // schedule and step 22 under the skewed oracle, so the first probe
    // that disagrees is set 17 — command index 3.
    assert_eq!(report.command_index, 3, "{report}");
}

/// Both sides wearing the same skew agree again: the differential
/// detects *disagreement*, not the absolute schedule.
#[test]
fn matching_skews_cancel_out() {
    let config = SystemConfig::small_test();
    let commands = generate_commands(&config, 99, 40);
    let setup = DiffSetup {
        policy: RefreshPolicy::ChargeAware,
        granularity: RefreshGranularity::PerBank,
        engine_skew: 2,
        oracle_skew: 2,
    };
    let report = run_differential(&config, &setup, &commands).expect("setup");
    assert!(
        report.is_none(),
        "matching skews diverged: {}",
        report.unwrap()
    );
}

/// Conventional refresh is schedule-oblivious: even a skewed engine
/// refreshes everything, so the differential must stay green.
#[test]
fn conventional_policy_is_skew_insensitive() {
    let config = SystemConfig::small_test();
    let commands = generate_commands(&config, 7, 32);
    let setup = DiffSetup {
        policy: RefreshPolicy::Conventional,
        granularity: RefreshGranularity::PerBank,
        engine_skew: 5,
        oracle_skew: 0,
    };
    let report = run_differential(&config, &setup, &commands).expect("setup");
    assert!(report.is_none());
}

/// Paper-scale geometry smoke: one scan window plus one skip window at
/// a reduced-capacity paper config with multi-row AR sets.
#[test]
fn multi_row_ar_sets_agree_at_reduced_paper_geometry() {
    let mut config = SystemConfig::paper_default();
    config.dram.capacity_bytes = 64 << 20; // 2048 rows/bank at 8 banks
    config.dram.cell_block_rows = 512;
    config.validate().expect("reduced paper config");
    assert_eq!(DramConfig::paper_default().num_chips, 8);
    let commands = vec![
        Command::WriteLine {
            bank: 3,
            row: 700,
            slot: 5,
            chip_mask: 0b0010_0001,
            fill_seed: 0x44,
        },
        Command::RunWindow,
        Command::WriteLine {
            bank: 3,
            row: 700,
            slot: 5,
            chip_mask: 0,
            fill_seed: 0,
        },
        Command::RunWindow,
        Command::RunWindow,
    ];
    for policy in policies() {
        let report =
            run_differential(&config, &DiffSetup::clean(policy), &commands).expect("setup");
        assert!(report.is_none(), "{policy:?}: {}", report.unwrap());
    }
}
