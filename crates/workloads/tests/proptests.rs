//! Property tests for the workload models.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zr_workloads::content::{zero_byte_fraction, LineClass};
use zr_workloads::image::region_classes;
use zr_workloads::trace::TraceGenerator;
use zr_workloads::{Benchmark, DatacenterTrace};

fn arb_benchmark() -> impl Strategy<Value = Benchmark> {
    (0..Benchmark::all().len()).prop_map(|i| Benchmark::all()[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_profile_generates_valid_regions(b in arb_benchmark(), n in 0u64..2000, seed in any::<u64>()) {
        let classes = region_classes(&b.profile(), n, seed);
        prop_assert_eq!(classes.len() as u64, n);
    }

    #[test]
    fn generated_lines_have_class_consistent_zero_content(
        b in arb_benchmark(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let profile = b.profile();
        let gen = profile.page_generator(32);
        let (class, lines) = gen.generate_page(&mut rng);
        let bytes: Vec<u8> = lines.iter().flatten().copied().collect();
        let zf = zero_byte_fraction(&bytes);
        match class {
            LineClass::Zero => prop_assert_eq!(zf, 1.0),
            LineClass::Text => prop_assert_eq!(zf, 0.0),
            LineClass::SmallIntArray { .. } => prop_assert!(zf > 0.5),
            _ => {}
        }
    }

    #[test]
    fn trace_writes_never_leave_the_footprint(
        b in arb_benchmark(),
        n_pages in 1usize..200,
        seed in any::<u64>(),
    ) {
        let classes = vec![LineClass::Random; n_pages];
        let mut tg = TraceGenerator::new(b.profile(), classes, 32, seed);
        for w in tg.window_writes(1.0) {
            prop_assert!(w.page < n_pages as u64);
            prop_assert!(w.line_in_page < 32);
        }
    }

    #[test]
    fn trace_touched_pages_bounded_by_capacity(
        b in arb_benchmark(),
        cap_pages in 1u64..100_000,
        seed in any::<u64>(),
    ) {
        let mut tg = TraceGenerator::new(b.profile(), Vec::new(), 64, seed);
        let touched = tg.window_touched_pages(cap_pages, 4096);
        prop_assert!(touched.len() as u64 <= cap_pages);
        prop_assert!(touched.iter().all(|&p| p < cap_pages));
    }

    #[test]
    fn trace_quantiles_are_monotone_probabilities(q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        for t in DatacenterTrace::all() {
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(t.quantile(lo) <= t.quantile(hi) + 1e-12);
            prop_assert!((0.0..=1.0).contains(&t.quantile(q1)));
        }
    }

    #[test]
    fn derived_seeds_are_distinct_across_the_suite(seed in any::<u64>()) {
        let mut seen = std::collections::HashSet::new();
        for b in Benchmark::all() {
            prop_assert!(seen.insert(b.derive_seed(seed)), "collision for {}", b.name());
        }
    }
}
