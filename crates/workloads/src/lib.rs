//! Synthetic benchmark memory contents, access traces and data-center
//! utilization models.
//!
//! The paper evaluates ZERO-REFRESH with execution-driven simulation over
//! 17 SPEC CPU2006, 2 NPB and 4 TPC-H workloads, using the applications'
//! real memory images, plus memory-utilization statistics from three
//! published data-center traces. Neither the benchmark images (PIN + SPEC
//! licensing) nor the raw traces are available here, so this crate
//! substitutes *statistical models that expose the same observables*
//! (see DESIGN.md, "Substitutions"):
//!
//! - [`content`] — cacheline/page content classes (zero pages, small-int
//!   arrays, pointer arrays, floats, text, sparse, random) whose
//!   BDI-friendliness spans the spectrum the mechanism cares about;
//! - [`profiles`] — one mixture profile per named benchmark, calibrated
//!   against the paper's published per-benchmark observables (Fig. 6 zero
//!   fractions, Fig. 14 reduction ordering, Fig. 19 working sets);
//! - [`trace`] — write/access trace generation within retention windows,
//!   used for the temperature sensitivity (Fig. 16) and the Smart Refresh
//!   comparison (Fig. 19);
//! - [`datacenter`] — quantile models of the Google / Alibaba / Bitbrains
//!   memory-utilization traces (Table I, Fig. 5).
//!
//! # Examples
//!
//! ```
//! use zr_workloads::profiles::Benchmark;
//!
//! let all = Benchmark::all();
//! assert_eq!(all.len(), 23);
//! let gems = Benchmark::by_name("gemsFDTD").unwrap();
//! // gemsFDTD is among the most transformation-friendly workloads…
//! let sp = Benchmark::by_name("sp.C").unwrap();
//! // …and sp.C among the least (Fig. 14).
//! assert!(gems.profile().expected_reduction() > sp.profile().expected_reduction());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod content;
pub mod datacenter;
pub mod image;
pub mod profiles;
pub mod trace;

pub use content::{LineClass, PageGenerator};
pub use datacenter::DatacenterTrace;
pub use profiles::{Benchmark, ContentProfile};
