//! Data-center memory-utilization trace models (§III-B, Table I, Fig. 5).
//!
//! The paper derives its idle-memory scenarios from three published
//! traces: Google cluster data (70% mean allocated), Alibaba cluster data
//! (88%), and Bitbrains business-critical VMs (28%, filtered to samples
//! with > 30% CPU utilization). Only the *allocated-memory fraction*
//! statistic enters the experiments, so each trace is modeled as a
//! piecewise-linear quantile function calibrated to the published mean
//! and a CDF shaped like Fig. 5.

use rand::Rng;

use zr_types::{Error, Result};

/// A memory-utilization trace model: a quantile table over utilization
/// in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DatacenterTrace {
    name: &'static str,
    /// Utilization at quantiles 0.0, 0.1, …, 1.0 (monotone, in [0,1]).
    quantiles: [f64; 11],
}

impl DatacenterTrace {
    /// The Google cluster trace model (Table I: 70% mean allocated).
    pub fn google() -> Self {
        DatacenterTrace {
            name: "google",
            quantiles: [
                0.32, 0.50, 0.58, 0.64, 0.69, 0.72, 0.76, 0.80, 0.84, 0.89, 0.96,
            ],
        }
    }

    /// The Alibaba cluster trace model (Table I: 88% mean allocated).
    pub fn alibaba() -> Self {
        DatacenterTrace {
            name: "alibaba",
            quantiles: [
                0.70, 0.78, 0.82, 0.85, 0.87, 0.89, 0.91, 0.92, 0.94, 0.96, 0.98,
            ],
        }
    }

    /// The Bitbrains trace model (Table I: 28% mean allocated, samples
    /// with > 30% CPU utilization only).
    pub fn bitbrains() -> Self {
        DatacenterTrace {
            name: "bitbrains",
            quantiles: [
                0.02, 0.08, 0.12, 0.16, 0.20, 0.24, 0.30, 0.36, 0.44, 0.56, 0.80,
            ],
        }
    }

    /// All three trace models in the paper's Table I order.
    pub fn all() -> Vec<DatacenterTrace> {
        vec![Self::google(), Self::alibaba(), Self::bitbrains()]
    }

    /// Looks a trace up by name (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownName`] if no trace matches.
    pub fn by_name(name: &str) -> Result<DatacenterTrace> {
        Self::all()
            .into_iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| Error::UnknownName {
                name: name.to_string(),
            })
    }

    /// The trace's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Utilization at quantile `q` (clamped to `[0, 1]`), by piecewise
    /// linear interpolation of the quantile table.
    ///
    /// # Examples
    ///
    /// ```
    /// let t = zr_workloads::DatacenterTrace::alibaba();
    /// assert!(t.quantile(0.5) > 0.85);
    /// assert!(t.quantile(0.0) < t.quantile(1.0));
    /// ```
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let pos = q * 10.0;
        let lo = pos.floor() as usize;
        if lo >= 10 {
            return self.quantiles[10];
        }
        let frac = pos - lo as f64;
        self.quantiles[lo] * (1.0 - frac) + self.quantiles[lo + 1] * frac
    }

    /// Mean utilization of the model (closed form for the piecewise
    /// linear quantile function).
    ///
    /// # Examples
    ///
    /// ```
    /// use zr_workloads::DatacenterTrace;
    /// assert!((DatacenterTrace::google().mean_utilization() - 0.70).abs() < 0.02);
    /// assert!((DatacenterTrace::alibaba().mean_utilization() - 0.88).abs() < 0.02);
    /// assert!((DatacenterTrace::bitbrains().mean_utilization() - 0.28).abs() < 0.02);
    /// ```
    pub fn mean_utilization(&self) -> f64 {
        // Trapezoid rule over the quantile function = exact mean of the
        // piecewise-linear model.
        let q = &self.quantiles;
        (q[0] / 2.0 + q[1..10].iter().sum::<f64>() + q[10] / 2.0) / 10.0
    }

    /// Samples a utilization value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.gen::<f64>())
    }

    /// CDF points `(utilization, cumulative_probability)` for plotting
    /// Fig. 5: the inverse of the quantile table.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        self.quantiles
            .iter()
            .enumerate()
            .map(|(i, &u)| (u, i as f64 / 10.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn means_match_table1() {
        assert!((DatacenterTrace::google().mean_utilization() - 0.70).abs() < 0.015);
        assert!((DatacenterTrace::alibaba().mean_utilization() - 0.88).abs() < 0.015);
        assert!((DatacenterTrace::bitbrains().mean_utilization() - 0.28).abs() < 0.015);
    }

    #[test]
    fn quantiles_are_monotone() {
        for t in DatacenterTrace::all() {
            for w in t.quantiles.windows(2) {
                assert!(w[1] >= w[0], "{}: non-monotone", t.name());
            }
            assert!(t.quantiles[0] >= 0.0 && t.quantiles[10] <= 1.0);
        }
    }

    #[test]
    fn interpolation_hits_table_points() {
        let t = DatacenterTrace::google();
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            assert!((t.quantile(q) - t.quantiles[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn sample_mean_converges() {
        let mut rng = StdRng::seed_from_u64(1);
        for t in DatacenterTrace::all() {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| t.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - t.mean_utilization()).abs() < 0.01,
                "{}: sample mean {mean} vs model {}",
                t.name(),
                t.mean_utilization()
            );
        }
    }

    #[test]
    fn ordering_matches_paper() {
        // Alibaba runs hottest, Bitbrains coldest (Fig. 5).
        let g = DatacenterTrace::google().mean_utilization();
        let a = DatacenterTrace::alibaba().mean_utilization();
        let b = DatacenterTrace::bitbrains().mean_utilization();
        assert!(a > g && g > b);
    }

    #[test]
    fn cdf_points_are_plottable() {
        let pts = DatacenterTrace::bitbrains().cdf_points();
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0].1, 0.0);
        assert_eq!(pts[10].1, 1.0);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
    }

    #[test]
    fn by_name_lookup() {
        assert_eq!(DatacenterTrace::by_name("Google").unwrap().name(), "google");
        assert!(DatacenterTrace::by_name("azure").is_err());
    }

    #[test]
    fn quantile_clamps() {
        let t = DatacenterTrace::google();
        assert_eq!(t.quantile(-1.0), t.quantiles[0]);
        assert_eq!(t.quantile(2.0), t.quantiles[10]);
    }
}
