//! Cacheline and page content classes.
//!
//! Memory contents differ enormously in how friendly they are to the
//! EBDI transformation. The classes here span that spectrum:
//!
//! | class | BDI-friendly? | byte-level zeros | example source |
//! |---|---|---|---|
//! | [`LineClass::Zero`] | trivially (whole line discharged) | 100% | OS-cleansed / bss pages |
//! | [`LineClass::SmallIntArray`] | yes (tiny base + tiny deltas) | high | counters, indices |
//! | [`LineClass::PointerArray`] | yes (large base, small deltas) | some | heap structures |
//! | [`LineClass::FloatArray`] | no (high-entropy mantissas) | low | scientific state |
//! | [`LineClass::Text`] | no (byte-granular values) | ~0 | string/code data |
//! | [`LineClass::SparseBytes`] | no (zeros scattered) | tunable | sparse matrices |
//! | [`LineClass::Random`] | no | ~0.4% | compressed/encrypted |
//!
//! Real applications exhibit strong *spatial* locality of content class —
//! an array spans whole pages — so generation happens page-at-a-time
//! ([`PageGenerator`]): every line of a page shares the page's class.
//! That locality is what lets whole DRAM rows become discharged.

use rand::Rng;

/// A content class for one page worth of cachelines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LineClass {
    /// All-zero content (cleansed, never-touched or zero-initialized).
    Zero,
    /// Arrays of small integers: every 8-byte word holds a value below
    /// `magnitude`.
    SmallIntArray {
        /// Exclusive upper bound of the stored values (≥ 1).
        magnitude: u64,
    },
    /// Pointer-like sequences: a large per-line base plus `stride`-sized
    /// increments between consecutive words.
    PointerArray {
        /// Increment between consecutive words (kept small so deltas
        /// encode into few bits).
        stride: u64,
    },
    /// IEEE-754 doubles with high-entropy mantissas.
    FloatArray,
    /// Printable ASCII text.
    Text,
    /// Mostly-zero bytes with scattered non-zero bytes.
    SparseBytes {
        /// Probability that any given byte is zero.
        zero_fraction: f64,
    },
    /// Uniformly random bytes.
    Random,
}

impl LineClass {
    /// Whether a page of this class becomes mostly discharged after the
    /// full transformation (base and delta groups excepted).
    pub fn is_bdi_friendly(self) -> bool {
        matches!(
            self,
            LineClass::Zero | LineClass::SmallIntArray { .. } | LineClass::PointerArray { .. }
        )
    }

    /// Generates one 64-byte cacheline of this class.
    pub fn generate_line<R: Rng + ?Sized>(self, rng: &mut R) -> [u8; 64] {
        let mut line = [0u8; 64];
        match self {
            LineClass::Zero => {}
            LineClass::SmallIntArray { magnitude } => {
                let mag = magnitude.max(1);
                for w in line.chunks_exact_mut(8) {
                    w.copy_from_slice(&rng.gen_range(0..mag).to_le_bytes());
                }
            }
            LineClass::PointerArray { stride } => {
                // Heap-like base: 47-bit canonical user-space pointer,
                // 16-byte aligned.
                let base = (rng.gen::<u64>() & 0x0000_7FFF_FFFF_FFF0).max(0x10000);
                for (i, w) in line.chunks_exact_mut(8).enumerate() {
                    let jitter = rng.gen_range(0..stride.max(1) / 2 + 1);
                    let v = base + i as u64 * stride + jitter;
                    w.copy_from_slice(&v.to_le_bytes());
                }
            }
            LineClass::FloatArray => {
                let scale = 10f64.powi(rng.gen_range(-3..6));
                for w in line.chunks_exact_mut(8) {
                    let v: f64 = rng.gen::<f64>() * scale;
                    w.copy_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            LineClass::Text => {
                const ALPHABET: &[u8] =
                    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ ,.0123456789";
                for b in line.iter_mut() {
                    *b = ALPHABET[rng.gen_range(0..ALPHABET.len())];
                }
            }
            LineClass::SparseBytes { zero_fraction } => {
                for b in line.iter_mut() {
                    if !rng.gen_bool(zero_fraction.clamp(0.0, 1.0)) {
                        *b = rng.gen_range(1..=255);
                    }
                }
            }
            LineClass::Random => rng.fill(&mut line[..]),
        }
        line
    }
}

/// Generates page-granular content: each page draws a class from a
/// mixture, then every line of the page is generated from that class.
#[derive(Debug, Clone)]
pub struct PageGenerator {
    classes: Vec<(LineClass, f64)>,
    lines_per_page: usize,
}

impl PageGenerator {
    /// Builds a generator from `(class, weight)` pairs; weights are
    /// normalized internally.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty, a weight is negative, or all weights
    /// are zero.
    pub fn new(classes: Vec<(LineClass, f64)>, lines_per_page: usize) -> Self {
        assert!(!classes.is_empty(), "at least one class required");
        assert!(
            classes.iter().all(|(_, w)| *w >= 0.0),
            "weights must be non-negative"
        );
        assert!(
            classes.iter().map(|(_, w)| *w).sum::<f64>() > 0.0,
            "total weight must be positive"
        );
        PageGenerator {
            classes,
            lines_per_page,
        }
    }

    /// Lines per generated page.
    pub fn lines_per_page(&self) -> usize {
        self.lines_per_page
    }

    /// Draws the content class for one page.
    pub fn draw_class<R: Rng + ?Sized>(&self, rng: &mut R) -> LineClass {
        let total: f64 = self.classes.iter().map(|(_, w)| w).sum();
        let mut x = rng.gen::<f64>() * total;
        for &(class, w) in &self.classes {
            if x < w {
                return class;
            }
            x -= w;
        }
        self.classes.last().expect("non-empty").0
    }

    /// Generates one page: a class and its lines.
    pub fn generate_page<R: Rng + ?Sized>(&self, rng: &mut R) -> (LineClass, Vec<[u8; 64]>) {
        let class = self.draw_class(rng);
        let lines = (0..self.lines_per_page)
            .map(|_| class.generate_line(rng))
            .collect();
        (class, lines)
    }
}

/// Fraction of zero bytes in a buffer (the Fig. 6 byte-granularity
/// metric).
///
/// # Examples
///
/// ```
/// use zr_workloads::content::zero_byte_fraction;
/// assert_eq!(zero_byte_fraction(&[0, 0, 1, 2]), 0.5);
/// assert_eq!(zero_byte_fraction(&[]), 0.0);
/// ```
pub fn zero_byte_fraction(bytes: &[u8]) -> f64 {
    if bytes.is_empty() {
        return 0.0;
    }
    bytes.iter().filter(|&&b| b == 0).count() as f64 / bytes.len() as f64
}

/// Fraction of fully-zero `block_bytes`-sized blocks (the Fig. 6 1 KB
/// metric uses `block_bytes = 1024`).
///
/// # Examples
///
/// ```
/// use zr_workloads::content::zero_block_fraction;
/// let mut buf = vec![0u8; 2048];
/// buf[1500] = 1;
/// assert_eq!(zero_block_fraction(&buf, 1024), 0.5);
/// ```
pub fn zero_block_fraction(bytes: &[u8], block_bytes: usize) -> f64 {
    let blocks: Vec<_> = bytes.chunks(block_bytes).collect();
    if blocks.is_empty() {
        return 0.0;
    }
    blocks.iter().filter(|b| b.iter().all(|&x| x == 0)).count() as f64 / blocks.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn zero_class_is_zero() {
        let line = LineClass::Zero.generate_line(&mut rng());
        assert_eq!(line, [0u8; 64]);
    }

    #[test]
    fn small_int_words_bounded() {
        let mut r = rng();
        for _ in 0..20 {
            let line = LineClass::SmallIntArray { magnitude: 100 }.generate_line(&mut r);
            for w in line.chunks_exact(8) {
                assert!(u64::from_le_bytes(w.try_into().unwrap()) < 100);
            }
        }
    }

    #[test]
    fn pointer_words_are_close_together() {
        let mut r = rng();
        for _ in 0..20 {
            let line = LineClass::PointerArray { stride: 16 }.generate_line(&mut r);
            let words: Vec<u64> = line
                .chunks_exact(8)
                .map(|w| u64::from_le_bytes(w.try_into().unwrap()))
                .collect();
            let base = words[0];
            for &w in &words[1..] {
                assert!(w >= base && w - base < 16 * 8 + 16, "delta too large");
            }
        }
    }

    #[test]
    fn text_is_printable() {
        let line = LineClass::Text.generate_line(&mut rng());
        assert!(line.iter().all(|&b| (0x20..0x7F).contains(&b)));
    }

    #[test]
    fn sparse_hits_target_zero_fraction() {
        let mut r = rng();
        let mut zeros = 0usize;
        let n = 500;
        for _ in 0..n {
            let line = LineClass::SparseBytes { zero_fraction: 0.7 }.generate_line(&mut r);
            zeros += line.iter().filter(|&&b| b == 0).count();
        }
        let frac = zeros as f64 / (n * 64) as f64;
        assert!((frac - 0.7).abs() < 0.03, "fraction {frac}");
    }

    #[test]
    fn random_has_few_zero_bytes() {
        let mut r = rng();
        let mut zeros = 0usize;
        for _ in 0..500 {
            let line = LineClass::Random.generate_line(&mut r);
            zeros += line.iter().filter(|&&b| b == 0).count();
        }
        let frac = zeros as f64 / (500.0 * 64.0);
        assert!(frac < 0.02, "fraction {frac}");
    }

    #[test]
    fn bdi_friendliness_classification() {
        assert!(LineClass::Zero.is_bdi_friendly());
        assert!(LineClass::SmallIntArray { magnitude: 5 }.is_bdi_friendly());
        assert!(LineClass::PointerArray { stride: 8 }.is_bdi_friendly());
        assert!(!LineClass::FloatArray.is_bdi_friendly());
        assert!(!LineClass::Text.is_bdi_friendly());
        assert!(!LineClass::Random.is_bdi_friendly());
    }

    #[test]
    fn page_generator_mixture_frequencies() {
        let g = PageGenerator::new(vec![(LineClass::Zero, 0.25), (LineClass::Random, 0.75)], 64);
        let mut r = rng();
        let mut zero_pages = 0;
        let n = 2000;
        for _ in 0..n {
            if matches!(g.draw_class(&mut r), LineClass::Zero) {
                zero_pages += 1;
            }
        }
        let frac = zero_pages as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.04, "fraction {frac}");
    }

    #[test]
    fn page_lines_share_class_behaviour() {
        let g = PageGenerator::new(vec![(LineClass::Zero, 1.0)], 64);
        let (class, lines) = g.generate_page(&mut rng());
        assert_eq!(class, LineClass::Zero);
        assert_eq!(lines.len(), 64);
        assert!(lines.iter().all(|l| l.iter().all(|&b| b == 0)));
    }

    #[test]
    fn zero_fraction_helpers() {
        assert_eq!(zero_byte_fraction(&[0; 8]), 1.0);
        assert_eq!(zero_block_fraction(&[0; 2048], 1024), 1.0);
        let mut buf = [0u8; 1024];
        buf[0] = 1;
        assert_eq!(zero_block_fraction(&buf, 1024), 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_mixture_panics() {
        PageGenerator::new(vec![], 64);
    }

    #[test]
    #[should_panic]
    fn zero_weights_panic() {
        PageGenerator::new(vec![(LineClass::Zero, 0.0)], 64);
    }
}
