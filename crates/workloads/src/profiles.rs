//! Per-benchmark content and traffic profiles.
//!
//! Each of the paper's 23 workloads (17 SPEC CPU2006, 2 NPB, 4 TPC-H) is
//! modeled as a mixture of page content classes plus traffic parameters.
//! The mixtures are calibrated against the paper's published observables:
//!
//! - Fig. 14's per-benchmark refresh-reduction ordering (gemsFDTD and
//!   sphinx3 highest; omnetpp, perlbench and sp.C lowest; 37.1% mean at
//!   100% allocation),
//! - Fig. 6's zero-value statistics (≈2.3% of 1 KB blocks, ≈43% of bytes
//!   zero on average over touched pages),
//! - Fig. 19's Smart Refresh working-set argument (mcf touches ≈47% of a
//!   4 GB memory per window, ≈6% of 32 GB),
//! - Fig. 17's IPC sensitivity (memory-bound gemsFDTD gains 10.8%,
//!   compute-bound gobmk 0.3%).
//!
//! The calibration lives entirely in [`Benchmark::profile`]'s table; the
//! machinery consuming it is content-agnostic.

use crate::content::{LineClass, PageGenerator};
use zr_types::{Error, Result};

/// Calibration gain applied to the BDI-friendly (small-int and pointer)
/// mixture weights when drawing page classes. The raw table values are
/// first-order targets; the gain compensates the reduction losses the
/// end-to-end pipeline introduces (content-run boundaries breaking row
/// homogeneity, steady-state writes re-refreshing the hot set) so the
/// *measured* Fig. 14 suite mean lands at the paper's 37.1%. Weights are
/// renormalized after the gain, so mixtures always stay valid.
pub const BDI_CALIBRATION_GAIN: f64 = 1.45;

/// A benchmark's content mixture and traffic parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentProfile {
    /// Benchmark name as the paper spells it.
    pub name: &'static str,
    /// Fraction of pages that are all-zero (zero-initialized, sparse tail
    /// of the heap, cleared buffers).
    pub zero_pages: f64,
    /// Fraction of pages holding small-integer arrays.
    pub small_int_pages: f64,
    /// Fraction of pages holding pointer-like structures.
    pub pointer_pages: f64,
    /// Fraction of pages holding floating-point state.
    pub float_pages: f64,
    /// Fraction of pages holding text.
    pub text_pages: f64,
    /// Fraction of pages holding sparse byte content.
    pub sparse_pages: f64,
    /// Memory accesses per kilo-instruction (drives the IPC model).
    pub mpki: f64,
    /// Fraction of memory accesses that are writes.
    pub write_fraction: f64,
    /// Resident working set of one instance in bytes (drives Fig. 19).
    pub working_set_bytes: u64,
    /// Fraction of the *allocated* footprint rewritten per 32 ms window
    /// (drives the temperature sensitivity of Fig. 16).
    pub rewrite_rate_per_window: f64,
}

impl ContentProfile {
    /// Remaining (random/incompressible) page fraction.
    pub fn random_pages(&self) -> f64 {
        (1.0 - self.zero_pages
            - self.small_int_pages
            - self.pointer_pages
            - self.float_pages
            - self.text_pages
            - self.sparse_pages)
            .max(0.0)
    }

    /// Upper-bound content estimate of the refresh reduction at 100%
    /// allocation: zero pages skip all 8 chip-row groups of a block,
    /// BDI-friendly pages skip 6 of 8 (all but the base and delta
    /// groups). The *measured* reduction sits a few points lower because
    /// content-run boundaries break row homogeneity and steady-state
    /// writes re-refresh the hot set.
    pub fn expected_reduction(&self) -> f64 {
        let w = self.effective_fractions();
        w[0] + 0.75 * (w[1] + w[2])
    }

    /// Effective (normalized) mixture fractions after the
    /// [`BDI_CALIBRATION_GAIN`], in the order zero, small-int, pointer,
    /// float, text, sparse, random.
    pub fn effective_fractions(&self) -> [f64; 7] {
        let mut w = [
            self.zero_pages,
            self.small_int_pages * BDI_CALIBRATION_GAIN,
            self.pointer_pages * BDI_CALIBRATION_GAIN,
            self.float_pages,
            self.text_pages,
            self.sparse_pages,
            self.random_pages(),
        ];
        let total: f64 = w.iter().sum();
        if total > 0.0 {
            for x in &mut w {
                *x /= total;
            }
        }
        w
    }

    /// Builds the page generator realizing this mixture.
    pub fn page_generator(&self, lines_per_page: usize) -> PageGenerator {
        let w = self.effective_fractions();
        PageGenerator::new(
            vec![
                (LineClass::Zero, w[0]),
                (LineClass::SmallIntArray { magnitude: 128 }, w[1]),
                (LineClass::PointerArray { stride: 16 }, w[2]),
                (LineClass::FloatArray, w[3]),
                (LineClass::Text, w[4]),
                (
                    LineClass::SparseBytes {
                        zero_fraction: 0.75,
                    },
                    w[5],
                ),
                (LineClass::Random, w[6]),
            ],
            lines_per_page,
        )
    }

    /// Validates that the mixture fractions are sane.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any fraction is negative or
    /// the total exceeds one.
    pub fn validate(&self) -> Result<()> {
        let parts = [
            self.zero_pages,
            self.small_int_pages,
            self.pointer_pages,
            self.float_pages,
            self.text_pages,
            self.sparse_pages,
        ];
        if parts.iter().any(|&p| p < 0.0) {
            return Err(Error::invalid_config("negative mixture fraction"));
        }
        if parts.iter().sum::<f64>() > 1.0 + 1e-9 {
            return Err(Error::invalid_config("mixture fractions exceed 1"));
        }
        if !(0.0..=1.0).contains(&self.write_fraction) {
            return Err(Error::invalid_config("write fraction out of range"));
        }
        Ok(())
    }
}

/// The paper's benchmark suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are the benchmark names themselves
pub enum Benchmark {
    // 17 SPEC CPU2006
    Astar,
    Bzip2,
    Gcc,
    GemsFdtd,
    Gobmk,
    H264ref,
    Hmmer,
    Lbm,
    Libquantum,
    Mcf,
    Milc,
    Omnetpp,
    Perlbench,
    Sjeng,
    Sphinx3,
    Xalancbmk,
    Zeusmp,
    // 2 NPB
    BtC,
    SpC,
    // 4 TPC-H
    TpchQ1,
    TpchQ6,
    TpchQ14,
    TpchQ19,
}

impl Benchmark {
    /// Every benchmark, in the paper's suite order (SPEC, NPB, TPC-H).
    pub fn all() -> &'static [Benchmark] {
        use Benchmark::*;
        &[
            Astar, Bzip2, Gcc, GemsFdtd, Gobmk, H264ref, Hmmer, Lbm, Libquantum, Mcf, Milc,
            Omnetpp, Perlbench, Sjeng, Sphinx3, Xalancbmk, Zeusmp, BtC, SpC, TpchQ1, TpchQ6,
            TpchQ14, TpchQ19,
        ]
    }

    /// The benchmark's display name (paper spelling).
    pub fn name(self) -> &'static str {
        self.profile().name
    }

    /// Derives a benchmark-specific seed from an experiment seed, so that
    /// benchmarks sharing one experiment seed still draw independent
    /// content-run patterns (a shared raw seed would align the rare class
    /// draws across the whole suite and bias suite means).
    ///
    /// # Examples
    ///
    /// ```
    /// use zr_workloads::Benchmark;
    /// assert_ne!(
    ///     Benchmark::Mcf.derive_seed(1),
    ///     Benchmark::Gcc.derive_seed(1)
    /// );
    /// ```
    pub fn derive_seed(self, seed: u64) -> u64 {
        // FNV-1a over the name, mixed with the experiment seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
        for b in self.name().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Looks a benchmark up by display name (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownName`] if no benchmark matches.
    pub fn by_name(name: &str) -> Result<Benchmark> {
        Benchmark::all()
            .iter()
            .copied()
            .find(|b| b.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| Error::UnknownName {
                name: name.to_string(),
            })
    }

    /// The calibrated profile for this benchmark.
    ///
    /// Mixture targets (see the module docs): `expected_reduction()`
    /// reproduces the Fig. 14 per-benchmark ordering; `mpki` spreads the
    /// Fig. 17 IPC sensitivity; `working_set_bytes` drives Fig. 19.
    pub fn profile(self) -> ContentProfile {
        use Benchmark::*;
        const GB: u64 = 1 << 30;
        const MB: u64 = 1 << 20;
        // Columns: zero, small-int, pointer, float, text, sparse pages;
        // mpki, write fraction, working set, rewrite rate per window.
        // Zero-page fractions stay small (Fig. 6: only ~2.3% of touched
        // 1 KB blocks are zero); the reduction targets of Fig. 14 are
        // carried by the BDI-friendly small-int/pointer pages.
        // The mixtures are calibrated so the *measured* reduction (after
        // content-run boundary losses and steady-state write traffic)
        // reproduces Fig. 14; `expected_reduction()` is therefore an
        // upper-bound content estimate, a few points above the measured
        // value.
        match self {
            Astar => p(
                "astar",
                0.02,
                0.325,
                0.213,
                0.05,
                0.08,
                0.25,
                6.0,
                0.30,
                300 * MB,
                0.003,
            ),
            Bzip2 => p(
                "bzip2",
                0.02,
                0.370,
                0.246,
                0.02,
                0.20,
                0.13,
                4.5,
                0.35,
                800 * MB,
                0.005,
            ),
            Gcc => p(
                "gcc",
                0.03,
                0.414,
                0.280,
                0.02,
                0.12,
                0.10,
                7.0,
                0.35,
                900 * MB,
                0.004,
            ),
            GemsFdtd => p(
                "gemsFDTD",
                0.04,
                0.570,
                0.380,
                0.00,
                0.00,
                0.00,
                25.0,
                0.30,
                3300 * MB,
                0.002,
            ),
            Gobmk => p(
                "gobmk",
                0.01,
                0.224,
                0.146,
                0.01,
                0.12,
                0.25,
                0.9,
                0.25,
                120 * MB,
                0.002,
            ),
            H264ref => p(
                "h264ref",
                0.02,
                0.302,
                0.202,
                0.05,
                0.08,
                0.25,
                2.2,
                0.30,
                250 * MB,
                0.005,
            ),
            Hmmer => p(
                "hmmer",
                0.02,
                0.347,
                0.235,
                0.02,
                0.12,
                0.25,
                2.8,
                0.40,
                120 * MB,
                0.005,
            ),
            Lbm => p(
                "lbm",
                0.03,
                0.470,
                0.314,
                0.14,
                0.00,
                0.03,
                22.0,
                0.45,
                1600 * MB,
                0.006,
            ),
            Libquantum => p(
                "libquantum",
                0.03,
                0.571,
                0.381,
                0.01,
                0.00,
                0.00,
                18.0,
                0.25,
                400 * MB,
                0.003,
            ),
            Mcf => p(
                "mcf",
                0.03,
                0.437,
                0.291,
                0.01,
                0.02,
                0.20,
                35.0,
                0.30,
                1900 * MB,
                0.004,
            ),
            Milc => p(
                "milc",
                0.04,
                0.493,
                0.325,
                0.10,
                0.00,
                0.02,
                16.0,
                0.35,
                1500 * MB,
                0.005,
            ),
            Omnetpp => p(
                "omnetpp",
                0.01,
                0.146,
                0.090,
                0.02,
                0.20,
                0.30,
                12.0,
                0.35,
                700 * MB,
                0.005,
            ),
            Perlbench => p(
                "perlbench",
                0.01,
                0.123,
                0.078,
                0.01,
                0.35,
                0.25,
                2.0,
                0.35,
                600 * MB,
                0.004,
            ),
            Sjeng => p(
                "sjeng",
                0.02,
                0.269,
                0.179,
                0.01,
                0.08,
                0.30,
                1.5,
                0.25,
                700 * MB,
                0.002,
            ),
            Sphinx3 => p(
                "sphinx3",
                0.05,
                0.560,
                0.370,
                0.01,
                0.00,
                0.00,
                14.0,
                0.20,
                180 * MB,
                0.002,
            ),
            Xalancbmk => p(
                "xalancbmk",
                0.02,
                0.325,
                0.213,
                0.01,
                0.22,
                0.18,
                10.0,
                0.30,
                400 * MB,
                0.004,
            ),
            Zeusmp => p(
                "zeusmp",
                0.04,
                0.515,
                0.347,
                0.07,
                0.00,
                0.02,
                9.0,
                0.40,
                1200 * MB,
                0.005,
            ),
            BtC => p(
                "bt.C",
                0.02,
                0.370,
                0.246,
                0.30,
                0.00,
                0.04,
                12.0,
                0.40,
                2700 * MB,
                0.006,
            ),
            SpC => p(
                "sp.C",
                0.01,
                0.101,
                0.067,
                0.66,
                0.00,
                0.15,
                15.0,
                0.45,
                2900 * MB,
                0.008,
            ),
            TpchQ1 => p(
                "tpch-q1",
                0.03,
                0.470,
                0.314,
                0.05,
                0.10,
                0.03,
                8.0,
                0.20,
                2200 * MB,
                0.003,
            ),
            TpchQ6 => p(
                "tpch-q6",
                0.04,
                0.515,
                0.347,
                0.03,
                0.05,
                0.01,
                7.0,
                0.15,
                2000 * MB,
                0.002,
            ),
            TpchQ14 => p(
                "tpch-q14",
                0.03,
                0.414,
                0.280,
                0.05,
                0.13,
                0.08,
                8.5,
                0.20,
                2 * GB,
                0.003,
            ),
            TpchQ19 => p(
                "tpch-q19",
                0.03,
                0.403,
                0.269,
                0.05,
                0.15,
                0.08,
                9.0,
                0.20,
                2 * GB,
                0.003,
            ),
        }
    }
}

#[allow(clippy::too_many_arguments)]
const fn p(
    name: &'static str,
    zero: f64,
    small_int: f64,
    pointer: f64,
    float: f64,
    text: f64,
    sparse: f64,
    mpki: f64,
    write_fraction: f64,
    working_set_bytes: u64,
    rewrite_rate_per_window: f64,
) -> ContentProfile {
    ContentProfile {
        name,
        zero_pages: zero,
        small_int_pages: small_int,
        pointer_pages: pointer,
        float_pages: float,
        text_pages: text,
        sparse_pages: sparse,
        mpki,
        write_fraction,
        working_set_bytes,
        rewrite_rate_per_window,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for b in Benchmark::all() {
            b.profile().validate().unwrap_or_else(|e| {
                panic!("{}: {e}", b.name());
            });
        }
    }

    #[test]
    fn suite_composition_matches_paper() {
        let names: Vec<&str> = Benchmark::all().iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 23); // 17 SPEC + 2 NPB + 4 TPC-H
        assert_eq!(names.iter().filter(|n| n.starts_with("tpch")).count(), 4);
        assert!(names.contains(&"bt.C") && names.contains(&"sp.C"));
    }

    #[test]
    fn mean_expected_reduction_bounds_fig14() {
        // The paper reports 37.1% mean measured reduction at 100%
        // allocation; the content upper bound sits several points above
        // it (boundary + write-traffic losses bring the measured value
        // down to the paper's number — asserted end-to-end in zr-sim).
        let mean: f64 = Benchmark::all()
            .iter()
            .map(|b| b.profile().expected_reduction())
            .sum::<f64>()
            / Benchmark::all().len() as f64;
        assert!(
            (0.40..0.55).contains(&mean),
            "mean expected reduction {mean}"
        );
    }

    #[test]
    fn fig14_ordering_extremes() {
        let r = |n: &str| {
            Benchmark::by_name(n)
                .unwrap()
                .profile()
                .expected_reduction()
        };
        // gemsFDTD and sphinx3 high; omnetpp, perlbench, sp.C low.
        for hi in ["gemsFDTD", "sphinx3"] {
            for lo in ["omnetpp", "perlbench", "sp.C"] {
                assert!(r(hi) > r(lo) + 0.3, "{hi} vs {lo}");
            }
        }
    }

    #[test]
    fn mcf_working_set_matches_fig19() {
        // Smart Refresh skips ~47.4% of a 4 GB memory for mcf -> the
        // touched footprint is ~1.9 GB.
        let ws = Benchmark::Mcf.profile().working_set_bytes;
        let frac = ws as f64 / (4u64 << 30) as f64;
        assert!((frac - 0.474).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn ipc_sensitivity_extremes() {
        // gemsFDTD is strongly memory-bound, gobmk is not (Fig. 17).
        assert!(Benchmark::GemsFdtd.profile().mpki > 20.0);
        assert!(Benchmark::Gobmk.profile().mpki < 1.0);
    }

    #[test]
    fn by_name_round_trips() {
        for b in Benchmark::all() {
            assert_eq!(Benchmark::by_name(b.name()).unwrap(), *b);
        }
        assert!(Benchmark::by_name("GEMSfdtd").is_ok());
        assert!(Benchmark::by_name("nosuch").is_err());
    }

    #[test]
    fn generators_build() {
        for b in Benchmark::all() {
            let g = b.profile().page_generator(64);
            assert_eq!(g.lines_per_page(), 64);
        }
    }

    #[test]
    fn random_fraction_nonnegative() {
        for b in Benchmark::all() {
            assert!(b.profile().random_pages() >= 0.0, "{}", b.name());
        }
    }

    // ---- generated-content statistics, pinned against fixed seeds ----
    //
    // The bands below are deliberately wide: the draw *streams* differ
    // between RNG backends, but the mixture statistics they realize are
    // backend-invariant to within sampling noise, and it is the
    // statistics the calibration story depends on.

    use crate::content::{zero_block_fraction, zero_byte_fraction};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Shannon entropy of the byte distribution, in bits per byte.
    fn byte_entropy_bits(bytes: &[u8]) -> f64 {
        let mut counts = [0u64; 256];
        for &b in bytes {
            counts[b as usize] += 1;
        }
        let n = bytes.len() as f64;
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum()
    }

    /// 64 pages of 16 lines for `b`, drawn from a fixed derived seed.
    fn sample_bytes(b: Benchmark, seed: u64) -> Vec<u8> {
        let generator = b.profile().page_generator(16);
        let mut rng = StdRng::seed_from_u64(b.derive_seed(seed));
        let mut bytes = Vec::new();
        for _ in 0..64 {
            let (_, lines) = generator.generate_page(&mut rng);
            for line in lines {
                bytes.extend_from_slice(&line);
            }
        }
        bytes
    }

    #[test]
    fn generated_content_is_deterministic_per_seed() {
        for b in [Benchmark::Gcc, Benchmark::Mcf, Benchmark::SpC] {
            assert_eq!(sample_bytes(b, 7), sample_bytes(b, 7), "{}", b.name());
            assert_ne!(sample_bytes(b, 7), sample_bytes(b, 8), "{}", b.name());
        }
    }

    #[test]
    fn suite_zero_statistics_land_in_the_calibrated_bands() {
        // Fig. 6's shape: zero *bytes* are common (suite mean tens of
        // percent — zero words inside live pointer/int pages), zero 1 KB
        // *blocks* are rare (only whole zero pages produce them).
        let (mut byte_mean, mut block_mean) = (0.0, 0.0);
        for &b in Benchmark::all() {
            let bytes = sample_bytes(b, 0xC0F0);
            let zb = zero_byte_fraction(&bytes);
            let kb = zero_block_fraction(&bytes, 1024);
            assert!(
                (0.05..=0.90).contains(&zb),
                "{}: zero-byte fraction {zb} implausible",
                b.name()
            );
            assert!(
                kb < 0.25,
                "{}: zero-block fraction {kb} implausibly high",
                b.name()
            );
            assert!(kb <= zb, "{}: block fraction above byte fraction", b.name());
            byte_mean += zb;
            block_mean += kb;
        }
        let n = Benchmark::all().len() as f64;
        byte_mean /= n;
        block_mean /= n;
        assert!(
            (0.35..=0.65).contains(&byte_mean),
            "suite mean zero-byte fraction {byte_mean} left the calibrated band"
        );
        assert!(
            (0.002..=0.10).contains(&block_mean),
            "suite mean zero-block fraction {block_mean} left the calibrated band"
        );
    }

    #[test]
    fn entropy_spectrum_tracks_the_mixtures() {
        // BDI-heavy mixtures (gemsFDTD) are low-entropy; random/float
        // heavy ones (sp.C) sit several bits higher; nothing reaches the
        // 8-bit ceiling because every profile keeps structured classes.
        let h = |b: Benchmark| byte_entropy_bits(&sample_bytes(b, 0xC0F0));
        for &b in Benchmark::all() {
            let e = h(b);
            assert!(
                (1.0..=7.9).contains(&e),
                "{}: entropy {e} bits implausible",
                b.name()
            );
        }
        assert!(
            h(Benchmark::GemsFdtd) + 0.5 < h(Benchmark::Omnetpp),
            "BDI-heavy gemsFDTD must be lower-entropy than omnetpp"
        );
        assert!(
            h(Benchmark::Omnetpp) + 0.5 < h(Benchmark::SpC),
            "float/random-heavy sp.C must top the entropy spectrum"
        );
    }

    #[test]
    fn zero_statistics_are_stable_across_seeds() {
        // The statistic (not the stream) is what the calibration pins:
        // across disjoint seeds the per-benchmark zero-byte fraction
        // moves by sampling noise only.
        for b in [Benchmark::GemsFdtd, Benchmark::Perlbench] {
            let a = zero_byte_fraction(&sample_bytes(b, 1));
            let c = zero_byte_fraction(&sample_bytes(b, 2));
            assert!(
                (a - c).abs() < 0.12,
                "{}: zero-byte fraction unstable across seeds: {a} vs {c}",
                b.name()
            );
        }
    }
}
