//! Access-trace generation within retention windows.
//!
//! Two consumers need per-window traffic:
//!
//! - the ZERO-REFRESH experiments need the *writes* that land between two
//!   refreshes (they dirty access-bit sets and temporarily disable
//!   skipping — the effect behind the Fig. 16 temperature sensitivity);
//! - the Smart Refresh baseline needs the set of *rows touched* per
//!   window (reads recharge rows too) — the Fig. 19 comparison.
//!
//! The generator draws from the benchmark's allocated footprint with
//! page-granular locality: a rewrite picks an allocated page and rewrites
//! a burst of lines in it with fresh content of the page's own class, the
//! way an application updates an array in place.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::content::LineClass;
use crate::profiles::ContentProfile;

/// One write in a trace: a page-relative location plus fresh content.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceWrite {
    /// Index of the written page within the allocated footprint.
    pub page: u64,
    /// Line index within the page.
    pub line_in_page: usize,
    /// The new cacheline content.
    pub data: [u8; 64],
}

/// Fraction of the allocated footprint that is write-hot. Applications
/// concentrate their stores: the rest of the image is read-mostly or
/// cold, which is what lets most AR sets keep their discharged status
/// across windows.
pub const HOT_SET_FRACTION: f64 = 0.50;

/// Per-window traffic generator for one benchmark instance.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: ContentProfile,
    rng: StdRng,
    allocated_pages: u64,
    lines_per_page: usize,
    page_classes: Vec<LineClass>,
    hot_start: u64,
    hot_len: u64,
}

impl TraceGenerator {
    /// Builds a generator over `allocated_pages` pages whose classes are
    /// `page_classes` (as produced when the image was populated).
    ///
    /// # Panics
    ///
    /// Panics if `page_classes` does not cover `allocated_pages`.
    pub fn new(
        profile: ContentProfile,
        page_classes: Vec<LineClass>,
        lines_per_page: usize,
        seed: u64,
    ) -> Self {
        let allocated_pages = page_classes.len() as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        // The write-hot set is a contiguous slice of the footprint (a hot
        // region, not scattered pages), placed at a seeded offset.
        let hot_len = ((allocated_pages as f64 * HOT_SET_FRACTION).ceil() as u64)
            .clamp(u64::from(allocated_pages > 0), allocated_pages);
        let hot_start = if allocated_pages > hot_len {
            rng.gen_range(0..allocated_pages - hot_len)
        } else {
            0
        };
        TraceGenerator {
            profile,
            rng,
            allocated_pages,
            lines_per_page,
            page_classes,
            hot_start,
            hot_len,
        }
    }

    /// The contiguous write-hot page range `[start, start + len)`.
    pub fn hot_range(&self) -> (u64, u64) {
        (self.hot_start, self.hot_len)
    }

    /// Number of allocated pages the generator draws from.
    pub fn allocated_pages(&self) -> u64 {
        self.allocated_pages
    }

    /// Lines rewritten in one window of `window_scale` retention units
    /// (1.0 for 32 ms, 2.0 for 64 ms — twice the wall-clock, twice the
    /// writes).
    pub fn writes_per_window(&self, window_scale: f64) -> u64 {
        let lines = self.allocated_pages as f64
            * self.lines_per_page as f64
            * self.profile.rewrite_rate_per_window
            * window_scale;
        lines.round() as u64
    }

    /// Generates the writes of one window. Writes burst within pages
    /// (16 consecutive lines per touched page) to model in-place array
    /// updates.
    pub fn window_writes(&mut self, window_scale: f64) -> Vec<TraceWrite> {
        let mut out = Vec::new();
        self.window_writes_into(window_scale, &mut out);
        out
    }

    /// [`Self::window_writes`] into a caller-owned buffer (cleared and
    /// refilled; capacity reused across windows — the allocation-free
    /// form sweep drivers use). The RNG draw sequence is identical to
    /// [`Self::window_writes`], so traces are byte-identical either way.
    pub fn window_writes_into(&mut self, window_scale: f64, out: &mut Vec<TraceWrite>) {
        let total = self.writes_per_window(window_scale);
        out.clear();
        out.reserve(total as usize);
        if self.allocated_pages == 0 {
            return;
        }
        const BURST: usize = 16;
        while (out.len() as u64) < total {
            let page = self.hot_start + self.rng.gen_range(0..self.hot_len);
            let class = self.page_classes[page as usize];
            let start = self
                .rng
                .gen_range(0..self.lines_per_page.saturating_sub(BURST).max(1));
            for i in 0..BURST.min(self.lines_per_page) {
                if out.len() as u64 == total {
                    break;
                }
                out.push(TraceWrite {
                    page,
                    line_in_page: start + i,
                    data: class.generate_line(&mut self.rng),
                });
            }
        }
    }

    /// The distinct rank-row-sized pages touched (read or written) in one
    /// window, for the Smart Refresh baseline: the touched footprint is
    /// `min(working_set, capacity)` spread uniformly over the memory.
    ///
    /// Returns page indices within `capacity_pages`.
    pub fn window_touched_pages(&mut self, capacity_pages: u64, page_bytes: u64) -> Vec<u64> {
        let ws_pages = (self.profile.working_set_bytes / page_bytes).min(capacity_pages);
        // Deterministic spread: the working set is resident, so the same
        // pages are touched every window; sample without replacement via
        // a stride permutation.
        let stride = (capacity_pages / ws_pages.max(1)).max(1);
        (0..ws_pages)
            .map(|i| (i * stride) % capacity_pages)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::Benchmark;

    fn generator(n_pages: usize) -> TraceGenerator {
        let profile = Benchmark::Mcf.profile();
        let classes = vec![LineClass::PointerArray { stride: 16 }; n_pages];
        TraceGenerator::new(profile, classes, 64, 7)
    }

    #[test]
    fn write_volume_scales_with_window() {
        let g = generator(100);
        let w32 = g.writes_per_window(1.0);
        let w64 = g.writes_per_window(2.0);
        // Doubling the window doubles the volume (up to rounding).
        assert!((w64 as i64 - 2 * w32 as i64).abs() <= 1, "{w32} vs {w64}");
        let rate = Benchmark::Mcf.profile().rewrite_rate_per_window;
        assert_eq!(w32, (100.0f64 * 64.0 * rate).round() as u64);
    }

    #[test]
    fn writes_stay_in_the_hot_set() {
        let mut g = generator(200);
        let (start, len) = g.hot_range();
        assert_eq!(len, (200.0 * HOT_SET_FRACTION).ceil() as u64);
        for w in g.window_writes(1.0) {
            assert!(w.page >= start && w.page < start + len);
        }
    }

    #[test]
    fn writes_are_in_range_and_deterministic() {
        let mut g1 = generator(50);
        let mut g2 = generator(50);
        let w1 = g1.window_writes(1.0);
        let w2 = g2.window_writes(1.0);
        assert_eq!(w1, w2, "same seed, same trace");
        assert!(!w1.is_empty());
        for w in &w1 {
            assert!(w.page < 50);
            assert!(w.line_in_page < 64);
        }
    }

    #[test]
    fn writes_respect_page_class() {
        let mut g = generator(10);
        for w in g.window_writes(1.0) {
            // Pointer-array lines: words ascend from a large base.
            let words: Vec<u64> = w
                .data
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            assert!(words[0] > 0x10000);
            assert!(words[7] > words[0]);
        }
    }

    #[test]
    fn empty_footprint_generates_nothing() {
        let profile = Benchmark::Gobmk.profile();
        let mut g = TraceGenerator::new(profile, vec![], 64, 1);
        assert!(g.window_writes(1.0).is_empty());
    }

    #[test]
    fn touched_pages_track_working_set() {
        let mut g = generator(100);
        // mcf: 1.9 GB working set. With 4 GB capacity (1 Mi pages of
        // 4 KiB), ~47% of pages are touched.
        let capacity_pages = (4u64 << 30) / 4096;
        let touched = g.window_touched_pages(capacity_pages, 4096);
        let frac = touched.len() as f64 / capacity_pages as f64;
        assert!((frac - 0.474).abs() < 0.02, "fraction {frac}");
        // With 32 GB capacity the same working set is a small fraction.
        let capacity_pages = (32u64 << 30) / 4096;
        let touched = g.window_touched_pages(capacity_pages, 4096);
        let frac = touched.len() as f64 / capacity_pages as f64;
        assert!(frac < 0.07, "fraction {frac}");
    }

    #[test]
    fn touched_pages_are_distinct_and_in_range() {
        let mut g = generator(10);
        let touched = g.window_touched_pages(1000, 4096);
        let mut sorted = touched.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), touched.len(), "duplicates found");
        assert!(touched.iter().all(|&p| p < 1000));
    }

    #[test]
    fn working_set_larger_than_capacity_saturates() {
        let mut g = generator(10);
        let touched = g.window_touched_pages(100, 4096);
        assert_eq!(touched.len(), 100);
    }
}
