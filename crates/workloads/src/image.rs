//! Memory-image layout: content-class *runs* over 2 KB regions.
//!
//! Real memory images are not i.i.d. at page granularity: an array spans
//! many contiguous kilobytes, while small heap objects change character
//! every couple of kilobytes. This matters for the row-size sensitivity of
//! Fig. 18 — a DRAM row is fully transformable only if *all* content it
//! covers is friendly, so smaller rows harvest short friendly runs that
//! larger rows waste.
//!
//! The model: content classes are assigned to runs of 2 KB regions whose
//! lengths are drawn from a bimodal distribution — short single-region
//! runs (heap-object clutter) and long 16-region (32 KB) runs (arrays).
//! The mix is calibrated so the relative reductions at 2 KB / 4 KB / 8 KB
//! rows reproduce the paper's 46.3% / 37.7% / 33.9% shape.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::content::LineClass;
use crate::profiles::ContentProfile;

/// Content-region size in bytes. Class runs are multiples of this.
pub const REGION_BYTES: usize = 2048;

/// Cachelines per content region.
pub const LINES_PER_REGION: usize = REGION_BYTES / 64;

/// Probability that a class run is a single region (2 KB); otherwise it is
/// [`LONG_RUN_REGIONS`] regions long.
pub const SHORT_RUN_PROBABILITY: f64 = 0.80;

/// Length of a long class run, in regions (48 KB).
pub const LONG_RUN_REGIONS: u64 = 24;

/// Assigns a content class to every 2 KB region of an allocated footprint,
/// in runs.
///
/// # Examples
///
/// ```
/// use zr_workloads::image::region_classes;
/// use zr_workloads::profiles::Benchmark;
///
/// let classes = region_classes(&Benchmark::Mcf.profile(), 1000, 42);
/// assert_eq!(classes.len(), 1000);
/// ```
pub fn region_classes(profile: &ContentProfile, n_regions: u64, seed: u64) -> Vec<LineClass> {
    let generator = profile.page_generator(LINES_PER_REGION);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut classes = Vec::with_capacity(n_regions as usize);
    let push = |classes: &mut Vec<LineClass>, class: LineClass, run: u64| {
        for _ in 0..run.min(n_regions - classes.len() as u64) {
            classes.push(class);
        }
    };
    while (classes.len() as u64) < n_regions {
        let class = generator.draw_class(&mut rng);
        if rng.gen_bool(SHORT_RUN_PROBABILITY) {
            push(&mut classes, class, 1);
            // A short friendly buffer sits inside hostile heap clutter:
            // pad it with a transformation-hostile neighbor so only rows
            // no larger than the buffer can harvest it (the Fig. 18
            // effect).
            if class.is_bdi_friendly() {
                push(&mut classes, LineClass::Text, 1);
            }
        } else {
            push(&mut classes, class, LONG_RUN_REGIONS);
        }
    }
    classes
}

/// Generates the lines of one region given its class.
pub fn region_lines<R: Rng + ?Sized>(class: LineClass, rng: &mut R) -> Vec<[u8; 64]> {
    (0..LINES_PER_REGION)
        .map(|_| class.generate_line(rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::Benchmark;

    #[test]
    fn covers_exactly_n_regions() {
        for n in [0u64, 1, 15, 16, 17, 1000] {
            let c = region_classes(&Benchmark::Gcc.profile(), n, 1);
            assert_eq!(c.len(), n as usize);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = Benchmark::Gcc.profile();
        assert_eq!(region_classes(&p, 500, 9), region_classes(&p, 500, 9));
        assert_ne!(region_classes(&p, 500, 9), region_classes(&p, 500, 10));
    }

    #[test]
    fn runs_exist() {
        // With 29% long runs, consecutive equal classes must be common.
        let c = region_classes(&Benchmark::GemsFdtd.profile(), 4000, 3);
        let repeats = c.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(repeats > 1500, "only {repeats} adjacent repeats");
    }

    #[test]
    fn class_frequencies_respect_profile() {
        let p = Benchmark::GemsFdtd.profile();
        let c = region_classes(&p, 60_000, 5);
        let zeros = c.iter().filter(|k| matches!(k, LineClass::Zero)).count();
        let frac = zeros as f64 / c.len() as f64;
        assert!(
            (frac - p.zero_pages).abs() < 0.03,
            "zero fraction {frac} vs profile {}",
            p.zero_pages
        );
    }

    #[test]
    fn region_geometry_constants() {
        assert_eq!(LINES_PER_REGION, 32);
        assert_eq!(REGION_BYTES % 64, 0);
    }

    #[test]
    fn region_lines_match_class() {
        let mut rng = StdRng::seed_from_u64(2);
        let lines = region_lines(LineClass::Zero, &mut rng);
        assert_eq!(lines.len(), 32);
        assert!(lines.iter().all(|l| l == &[0u8; 64]));
    }
}
