//! # zr-insight — actionable observability over zr-prof captures
//!
//! zr-prof answers "where did this run spend its time"; zr-insight
//! answers the follow-up questions the perf gate raises:
//!
//! * **Which span regressed?** — [`diff`] loads two `profile.json`
//!   call-trees and produces per-span-path deltas of wall time,
//!   thread-CPU time, allocation count and bytes, calibration-scaled so
//!   machine speed differences cancel, with deterministic top-N
//!   rankings by self time and by allocations. `zr-bench perf` uses it
//!   to name the offending span paths when the gate fails.
//! * **Is this slice creeping?** — [`history`] extends
//!   `BENCH_perf.json` with a bounded ring of prior blessed runs per
//!   slice and flags monotonic drift that stays inside the per-run
//!   tolerance. `zr-bench history` prints the trajectory.
//!
//! The crate also hosts the `zr-prof` CLI (`report`, `folded`, and the
//! new `diff` subcommand) — it moved here from zr-prof so the binary
//! can link the diff engine without a dependency cycle.
//!
//! Everything is std-only and byte-deterministic: identical inputs
//! produce identical diff JSON and identical history documents, on any
//! thread count, which is what lets CI archive them as artifacts and
//! compare across runs.

pub mod diff;
pub mod history;

pub use diff::{
    calibration_scale, diff_profiles, load_profile, run_diff, DeltaKind, ProfileDiff, SpanDelta,
    SCALE_CLAMP,
};
pub use history::{
    bless_with_history, detect_trend, history_table, report_with_history_json, slice_series,
    HistoryEntry, PerfHistory, Trend, DRIFT_MIN_GROWTH, DRIFT_MIN_RUN, HISTORY_CAP,
};
