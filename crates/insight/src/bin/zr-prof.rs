//! The `zr-prof` CLI: render and compare saved profiles.
//!
//! ```text
//! zr-prof report <profile.json> [--top N]                 # hot-scope table
//! zr-prof folded <profile.json>                           # collapsed stacks to stdout
//! zr-prof diff <old.json> <new.json> [--top N] [--json F] # span-level deltas
//! ```
//!
//! Profiles are captured by the workloads themselves: `zr-bench
//! profile`, or any figure binary run with `ZR_PROF=<dir>`. `diff`
//! scales the old capture by the calibration ratio between the two
//! machines before subtracting (see `docs/INSIGHT.md`), prints a human
//! table, and with `--json` also writes the machine-readable delta
//! document.

use std::path::Path;
use std::process::ExitCode;

use zr_prof::json::Json;
use zr_prof::Profile;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  zr-prof report <profile.json> [--top N]\n  zr-prof folded <profile.json>\n  zr-prof diff <old.json> <new.json> [--top N] [--json <out.json>]"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Profile, String> {
    let text =
        std::fs::read_to_string(Path::new(path)).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    Profile::from_json(&doc)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => return usage(),
    };
    match cmd {
        "report" => {
            let Some(path) = rest.first() else {
                return usage();
            };
            let mut top = 20usize;
            let mut it = rest[1..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--top" => match it.next().and_then(|v| v.parse().ok()) {
                        Some(n) => top = n,
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            match load(path) {
                Ok(profile) => {
                    print!("{}", profile.report(top));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("zr-prof: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "folded" => {
            let Some(path) = rest.first() else {
                return usage();
            };
            match load(path) {
                Ok(profile) => {
                    print!("{}", profile.to_folded());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("zr-prof: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "diff" => {
            let (Some(old_path), Some(new_path)) = (rest.first(), rest.get(1)) else {
                return usage();
            };
            let mut top = 10usize;
            let mut json_out: Option<String> = None;
            let mut it = rest[2..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--top" => match it.next().and_then(|v| v.parse().ok()) {
                        Some(n) => top = n,
                        None => return usage(),
                    },
                    "--json" => match it.next() {
                        Some(path) => json_out = Some(path.clone()),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            match zr_insight::run_diff(
                Path::new(old_path),
                Path::new(new_path),
                top,
                json_out.as_deref().map(Path::new),
            ) {
                Ok(table) => {
                    print!("{table}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("zr-prof: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
