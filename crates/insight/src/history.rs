//! Perf-baseline history: a bounded ring of prior blessed runs per
//! slice, stored under a document-level `history` key inside
//! `BENCH_perf.json`, plus trend detection over it.
//!
//! [`PerfReport::from_json`] ignores unknown keys, so the extended
//! document stays loadable by every existing consumer. Each re-bless
//! pushes the *outgoing* baseline's slices into the ring before the new
//! numbers replace them — the ring always holds what the gate used to
//! compare against, oldest first, capped at [`HISTORY_CAP`] entries.
//!
//! Trend detection normalizes wall times by each entry's calibration
//! spin (so a slower capture machine does not read as drift) and flags
//! a slice as drifting when the normalized series ends in a strictly
//! increasing run of at least [`DRIFT_MIN_RUN`] points whose total
//! growth exceeds [`DRIFT_MIN_GROWTH`] — creep the 25%-tolerance gate
//! never fires on.

use std::path::Path;

use zr_prof::json::Json;
use zr_prof::perf::{PerfReport, SliceResult};

/// Maximum prior runs kept per slice; the oldest entry is dropped
/// when a bless would exceed it.
pub const HISTORY_CAP: usize = 16;

/// Minimum length of the strictly-increasing suffix before a slice is
/// called drifting.
pub const DRIFT_MIN_RUN: usize = 3;

/// Minimum relative growth across the increasing suffix (0.05 = +5%).
pub const DRIFT_MIN_GROWTH: f64 = 0.05;

/// One prior blessed run of one slice — the fields the gate and the
/// trend detector care about.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Best-run wall time, nanoseconds.
    pub wall_ns_best: u64,
    /// Work units per second at the best wall time.
    pub throughput_per_s: f64,
    /// Allocations in one run.
    pub allocs: u64,
    /// Calibration spin wall time on the capture machine (0 = unknown).
    pub calibration_wall_ns: u64,
    /// Sweep-pool width (0 = unknown).
    pub threads: u64,
    /// Process peak RSS after the slice (0 = unknown).
    pub peak_rss_bytes: u64,
}

impl HistoryEntry {
    /// Captures the history-relevant fields of a blessed slice.
    pub fn from_slice(slice: &SliceResult) -> HistoryEntry {
        HistoryEntry {
            wall_ns_best: slice.wall_ns_best,
            throughput_per_s: slice.throughput_per_s,
            allocs: slice.allocs,
            calibration_wall_ns: slice.calibration_wall_ns,
            threads: slice.threads,
            peak_rss_bytes: slice.peak_rss_bytes,
        }
    }

    /// Wall time normalized by the entry's calibration spin — a
    /// machine-independent cost figure. Falls back to raw nanoseconds
    /// when calibration is unknown.
    pub fn normalized_wall(&self) -> f64 {
        if self.calibration_wall_ns == 0 {
            self.wall_ns_best as f64
        } else {
            self.wall_ns_best as f64 / self.calibration_wall_ns as f64
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("wall_ns_best".into(), Json::Num(self.wall_ns_best as f64)),
            ("throughput_per_s".into(), Json::Num(self.throughput_per_s)),
            ("allocs".into(), Json::Num(self.allocs as f64)),
            (
                "calibration_wall_ns".into(),
                Json::Num(self.calibration_wall_ns as f64),
            ),
            ("threads".into(), Json::Num(self.threads as f64)),
            (
                "peak_rss_bytes".into(),
                Json::Num(self.peak_rss_bytes as f64),
            ),
        ])
    }

    fn from_json(doc: &Json) -> Result<HistoryEntry, String> {
        let num = |k: &str| -> Result<u64, String> {
            doc.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("history entry: `{k}` missing or not a number"))
        };
        Ok(HistoryEntry {
            wall_ns_best: num("wall_ns_best")?,
            throughput_per_s: doc
                .get("throughput_per_s")
                .and_then(Json::as_f64)
                .ok_or("history entry: `throughput_per_s` missing")?,
            allocs: num("allocs")?,
            calibration_wall_ns: num("calibration_wall_ns")?,
            threads: num("threads")?,
            peak_rss_bytes: num("peak_rss_bytes")?,
        })
    }
}

/// Prior blessed runs per slice, oldest first, in first-seen slice
/// order (deterministic serialization).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfHistory {
    /// `(slice name, entries oldest -> newest)`.
    pub slices: Vec<(String, Vec<HistoryEntry>)>,
}

impl PerfHistory {
    /// Reads the `history` key of a `BENCH_perf.json` document.
    /// A missing key is an empty history (schema-1/2 files without it).
    ///
    /// # Errors
    ///
    /// Returns a message when the key is present but malformed.
    pub fn from_doc(doc: &Json) -> Result<PerfHistory, String> {
        let Some(history) = doc.get("history") else {
            return Ok(PerfHistory::default());
        };
        let Json::Obj(entries) = history else {
            return Err("perf history: `history` is not an object".into());
        };
        let mut slices = Vec::with_capacity(entries.len());
        for (name, runs) in entries {
            let runs = runs
                .as_arr()
                .ok_or_else(|| format!("perf history: `{name}` is not an array"))?;
            let mut parsed = Vec::with_capacity(runs.len());
            for run in runs {
                parsed.push(HistoryEntry::from_json(run)?);
            }
            slices.push((name.clone(), parsed));
        }
        Ok(PerfHistory { slices })
    }

    /// Serializes to the `history` key value.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.slices
                .iter()
                .map(|(name, runs)| {
                    (
                        name.clone(),
                        Json::Arr(runs.iter().map(HistoryEntry::to_json).collect()),
                    )
                })
                .collect(),
        )
    }

    /// The ring for one slice, if any runs are recorded.
    pub fn slice(&self, name: &str) -> Option<&[HistoryEntry]> {
        self.slices
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, runs)| runs.as_slice())
    }

    /// Pushes every slice of an outgoing baseline into its ring,
    /// dropping the oldest entries beyond [`HISTORY_CAP`].
    pub fn push_report(&mut self, report: &PerfReport) {
        for slice in &report.slices {
            let runs = match self.slices.iter_mut().find(|(n, _)| n == &slice.name) {
                Some((_, runs)) => runs,
                None => {
                    self.slices.push((slice.name.clone(), Vec::new()));
                    &mut self.slices.last_mut().expect("just pushed").1
                }
            };
            runs.push(HistoryEntry::from_slice(slice));
            if runs.len() > HISTORY_CAP {
                let excess = runs.len() - HISTORY_CAP;
                runs.drain(..excess);
            }
        }
    }

    /// Whether any slice holds any prior run.
    pub fn is_empty(&self) -> bool {
        self.slices.iter().all(|(_, runs)| runs.is_empty())
    }
}

/// Verdict of [`detect_trend`] over one slice's normalized wall series.
#[derive(Debug, Clone, PartialEq)]
pub struct Trend {
    /// Length of the strictly-increasing suffix (1 = the last point
    /// alone, i.e. no increase).
    pub run_len: usize,
    /// Relative growth across that suffix (`last / first - 1`).
    pub growth: f64,
    /// `run_len >= DRIFT_MIN_RUN && growth > DRIFT_MIN_GROWTH`.
    pub drifting: bool,
}

/// Finds the longest strictly-increasing suffix of `points` and its
/// total relative growth. Empty input yields a non-drifting zero trend.
pub fn detect_trend(points: &[f64]) -> Trend {
    if points.is_empty() {
        return Trend {
            run_len: 0,
            growth: 0.0,
            drifting: false,
        };
    }
    let mut start = points.len() - 1;
    while start > 0 && points[start - 1] < points[start] {
        start -= 1;
    }
    let run_len = points.len() - start;
    let first = points[start];
    let last = points[points.len() - 1];
    let growth = if first > 0.0 { last / first - 1.0 } else { 0.0 };
    Trend {
        run_len,
        growth,
        drifting: run_len >= DRIFT_MIN_RUN && growth > DRIFT_MIN_GROWTH,
    }
}

/// The normalized wall series of one slice: ring entries oldest first,
/// then the current baseline slice as the newest point.
pub fn slice_series(history: &PerfHistory, current: &SliceResult) -> Vec<f64> {
    let mut points: Vec<f64> = history
        .slice(&current.name)
        .unwrap_or(&[])
        .iter()
        .map(HistoryEntry::normalized_wall)
        .collect();
    points.push(HistoryEntry::from_slice(current).normalized_wall());
    points
}

/// Renders the per-slice trajectory table for `zr-bench history`:
/// one block per baseline slice with its ring (oldest first), the
/// current baseline as the last row, and a trend verdict.
pub fn history_table(baseline: &PerfReport, history: &PerfHistory) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "perf history (cap {HISTORY_CAP} prior runs per slice, quick={})\n",
        baseline.quick
    ));
    if baseline.slices.is_empty() {
        out.push_str("no slices in baseline\n");
        return out;
    }
    for slice in &baseline.slices {
        let ring = history.slice(&slice.name).unwrap_or(&[]);
        out.push_str(&format!(
            "\n{} ({} prior run(s)):\n",
            slice.name,
            ring.len()
        ));
        out.push_str(&format!(
            "  {:>4} {:>12} {:>14} {:>10} {:>8} {:>10}\n",
            "run", "wall(ms)", "norm_wall", "allocs", "threads", "cal(ms)"
        ));
        let current = HistoryEntry::from_slice(slice);
        for (idx, entry) in ring.iter().chain(std::iter::once(&current)).enumerate() {
            let marker = if idx == ring.len() { "now" } else { "" };
            out.push_str(&format!(
                "  {:>4} {:>12.3} {:>14.6} {:>10} {:>8} {:>10.2} {}\n",
                idx,
                entry.wall_ns_best as f64 / 1e6,
                entry.normalized_wall(),
                entry.allocs,
                entry.threads,
                entry.calibration_wall_ns as f64 / 1e6,
                marker,
            ));
        }
        let trend = detect_trend(&slice_series(history, slice));
        if trend.drifting {
            out.push_str(&format!(
                "  DRIFT: wall grew {:+.1}% over the last {} blessed runs \
                 (inside per-run tolerance, monotonic across runs)\n",
                trend.growth * 100.0,
                trend.run_len,
            ));
        } else {
            out.push_str(&format!(
                "  trend: steady (last {} point(s), {:+.1}%)\n",
                trend.run_len,
                trend.growth * 100.0,
            ));
        }
    }
    out
}

/// Serializes a baseline plus its history ring into one document —
/// the report's own keys first, then `history`.
pub fn report_with_history_json(report: &PerfReport, history: &PerfHistory) -> Json {
    let mut doc = match report.to_json() {
        Json::Obj(fields) => fields,
        other => return other,
    };
    if !history.is_empty() {
        doc.push(("history".into(), history.to_json()));
    }
    Json::Obj(doc)
}

/// Blesses `current` into `path`, carrying the history ring forward:
/// the outgoing baseline's slices are pushed into the ring (the ring
/// is reset when the outgoing run's `quick` flag differs — quick and
/// full wall times are not comparable), then the new document is
/// written. A missing or unreadable outgoing file blesses with an
/// empty ring.
///
/// # Errors
///
/// Propagates the write error.
pub fn bless_with_history(path: &Path, current: &PerfReport) -> Result<(), String> {
    let mut history = PerfHistory::default();
    if let Ok(text) = std::fs::read_to_string(path) {
        if let Ok(doc) = Json::parse(&text) {
            if let Ok(outgoing) = PerfReport::from_json(&doc) {
                if outgoing.quick == current.quick {
                    history = PerfHistory::from_doc(&doc).unwrap_or_default();
                    history.push_report(&outgoing);
                }
            }
        }
    }
    std::fs::write(
        path,
        report_with_history_json(current, &history).to_pretty(),
    )
    .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice(name: &str, wall: u64, cal: u64) -> SliceResult {
        SliceResult {
            name: name.to_string(),
            wall_ns_runs: vec![wall],
            wall_ns_best: wall,
            work_units: 100,
            unit: "rows".to_string(),
            throughput_per_s: 100.0 / (wall as f64 / 1e9),
            allocs: 42,
            alloc_bytes: 4096,
            threads: 1,
            calibration_wall_ns: cal,
            peak_rss_bytes: 1 << 20,
        }
    }

    fn report(slices: Vec<SliceResult>) -> PerfReport {
        PerfReport {
            schema: 2,
            quick: true,
            calibration_wall_ns: 1_000_000,
            peak_rss_bytes: 1 << 20,
            slices,
        }
    }

    #[test]
    fn push_report_caps_the_ring() {
        let mut history = PerfHistory::default();
        for i in 0..(HISTORY_CAP as u64 + 5) {
            history.push_report(&report(vec![slice("s", 1000 + i, 100)]));
        }
        let ring = history.slice("s").expect("ring exists");
        assert_eq!(ring.len(), HISTORY_CAP);
        // Oldest entries were dropped: the ring starts at run 5.
        assert_eq!(ring[0].wall_ns_best, 1005);
        assert_eq!(
            ring[HISTORY_CAP - 1].wall_ns_best,
            1000 + HISTORY_CAP as u64 + 4
        );
    }

    #[test]
    fn history_round_trips_through_json() {
        let mut history = PerfHistory::default();
        history.push_report(&report(vec![slice("a", 1000, 100), slice("b", 2000, 100)]));
        history.push_report(&report(vec![slice("a", 1100, 100)]));
        let doc = Json::Obj(vec![("history".into(), history.to_json())]);
        let parsed = PerfHistory::from_doc(&doc).expect("parses");
        assert_eq!(parsed, history);
        // Byte-determinism of the serialized form.
        assert_eq!(history.to_json().to_pretty(), parsed.to_json().to_pretty());
    }

    #[test]
    fn missing_history_key_is_empty() {
        let doc = Json::Obj(vec![("schema".into(), Json::Num(2.0))]);
        let history = PerfHistory::from_doc(&doc).expect("parses");
        assert!(history.is_empty());
    }

    #[test]
    fn detect_trend_flags_monotonic_growth() {
        // Three strictly increasing points, +10% total: drifting.
        let t = detect_trend(&[1.0, 1.04, 1.10]);
        assert_eq!(t.run_len, 3);
        assert!(t.drifting, "{t:?}");
        // Growth below the floor: not drifting.
        let t = detect_trend(&[1.0, 1.01, 1.02]);
        assert_eq!(t.run_len, 3);
        assert!(!t.drifting, "{t:?}");
        // A dip resets the run even with large total growth.
        let t = detect_trend(&[1.0, 2.0, 1.5, 1.6]);
        assert_eq!(t.run_len, 2);
        assert!(!t.drifting, "{t:?}");
        // Empty and single-point series are steady.
        assert!(!detect_trend(&[]).drifting);
        assert!(!detect_trend(&[5.0]).drifting);
    }

    #[test]
    fn trend_is_calibration_normalized() {
        // Wall doubled but so did calibration: the machine got slower,
        // the code did not. Normalized series is flat.
        let mut history = PerfHistory::default();
        history.push_report(&report(vec![slice("s", 1000, 100)]));
        history.push_report(&report(vec![slice("s", 1500, 150)]));
        let current = slice("s", 2000, 200);
        let series = slice_series(&history, &current);
        assert_eq!(series, vec![10.0, 10.0, 10.0]);
        assert!(!detect_trend(&series).drifting);
    }

    #[test]
    fn bless_with_history_carries_the_outgoing_baseline() {
        let dir = std::env::temp_dir().join(format!(
            "zr-insight-bless-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("BENCH_perf.json");

        // First bless: no outgoing file, empty ring.
        let first = report(vec![slice("s", 1000, 100)]);
        bless_with_history(&path, &first).expect("bless");
        let doc = Json::parse(&std::fs::read_to_string(&path).expect("read")).expect("json");
        assert!(doc.get("history").is_none(), "first bless has no history");
        assert!(PerfReport::from_json(&doc).is_ok(), "stays loadable");

        // Second bless: the first baseline lands in the ring.
        let second = report(vec![slice("s", 1200, 100)]);
        bless_with_history(&path, &second).expect("bless");
        let doc = Json::parse(&std::fs::read_to_string(&path).expect("read")).expect("json");
        let report_back = PerfReport::from_json(&doc).expect("loadable with history key");
        assert_eq!(report_back.slice("s").expect("slice").wall_ns_best, 1200);
        let history = PerfHistory::from_doc(&doc).expect("history parses");
        let ring = history.slice("s").expect("ring");
        assert_eq!(ring.len(), 1);
        assert_eq!(ring[0].wall_ns_best, 1000);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bless_resets_history_when_quick_flag_differs() {
        let dir = std::env::temp_dir().join(format!(
            "zr-insight-bless-quick-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("BENCH_perf.json");

        let quick = report(vec![slice("s", 1000, 100)]);
        bless_with_history(&path, &quick).expect("bless");
        let full = PerfReport {
            quick: false,
            ..report(vec![slice("s", 90_000, 100)])
        };
        bless_with_history(&path, &full).expect("bless");
        let doc = Json::parse(&std::fs::read_to_string(&path).expect("read")).expect("json");
        assert!(
            doc.get("history").is_none(),
            "quick-flag change resets the ring"
        );

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn history_table_marks_drift() {
        let mut history = PerfHistory::default();
        history.push_report(&report(vec![slice("s", 1000, 100)]));
        history.push_report(&report(vec![slice("s", 1100, 100)]));
        let baseline = report(vec![slice("s", 1250, 100)]);
        let table = history_table(&baseline, &history);
        assert!(table.contains("DRIFT"), "{table}");
        assert!(table.contains("+25.0%"), "{table}");
        // Steady series prints no drift line.
        let steady = history_table(
            &report(vec![slice("s", 1000, 100)]),
            &PerfHistory::default(),
        );
        assert!(!steady.contains("DRIFT"), "{steady}");
        assert!(steady.contains("trend: steady"), "{steady}");
    }
}
