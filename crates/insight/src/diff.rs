//! The profile-diff engine: per-span-path deltas between two
//! [`Profile`] captures, calibration-scaled so a capture from a slower
//! machine does not read as a regression.
//!
//! The old profile's wall and CPU times are multiplied by the
//! calibration ratio `new_calibration / old_calibration` (clamped to
//! 0.25–4×, mirroring the perf gate) before subtracting; allocation and
//! call counts are machine-independent and compare unscaled. Paths are
//! classified [`DeltaKind::Added`] / [`DeltaKind::Removed`] /
//! [`DeltaKind::Changed`], all-zero deltas are dropped (so
//! `diff(a, a)` is empty), and the delta list is sorted by path — with
//! [`Json`] printing being byte-stable, identical inputs always produce
//! identical diff JSON.

use std::path::Path;

use zr_prof::json::Json;
use zr_prof::{Profile, ProfileNode};

/// How a span path changed between the two captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    /// Present only in the new capture.
    Added,
    /// Present only in the old capture.
    Removed,
    /// Present in both with at least one non-zero delta.
    Changed,
}

impl DeltaKind {
    /// Stable lowercase name used in the JSON document and the table.
    pub fn name(self) -> &'static str {
        match self {
            DeltaKind::Added => "added",
            DeltaKind::Removed => "removed",
            DeltaKind::Changed => "changed",
        }
    }

    fn from_name(name: &str) -> Option<DeltaKind> {
        match name {
            "added" => Some(DeltaKind::Added),
            "removed" => Some(DeltaKind::Removed),
            "changed" => Some(DeltaKind::Changed),
            _ => None,
        }
    }
}

/// Signed per-metric deltas of one span path (`new - scaled(old)`;
/// positive = the new capture is bigger/slower).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanDelta {
    /// `;`-joined span stack.
    pub path: String,
    /// Added / removed / changed.
    pub kind: DeltaKind,
    /// Call-count delta (unscaled).
    pub calls_delta: i64,
    /// Total wall-time delta, nanoseconds, after calibration scaling.
    pub wall_delta_ns: i64,
    /// Self wall-time delta (total minus direct children), nanoseconds,
    /// after calibration scaling.
    pub self_wall_delta_ns: i64,
    /// Thread-CPU delta, nanoseconds, after calibration scaling.
    pub cpu_delta_ns: i64,
    /// Allocation-count delta (unscaled).
    pub allocs_delta: i64,
    /// Allocated-bytes delta (unscaled).
    pub alloc_bytes_delta: i64,
}

impl SpanDelta {
    fn is_zero(&self) -> bool {
        self.calls_delta == 0
            && self.wall_delta_ns == 0
            && self.self_wall_delta_ns == 0
            && self.cpu_delta_ns == 0
            && self.allocs_delta == 0
            && self.alloc_bytes_delta == 0
    }
}

/// The diff of two profiles: capture metadata of both sides, the
/// applied calibration scale, and one [`SpanDelta`] per path whose
/// metrics differ, sorted by path.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDiff {
    /// Multiplier applied to the old capture's wall/CPU times
    /// (`new_calibration / old_calibration`, clamped to 0.25–4.0;
    /// 1.0 when either capture lacks calibration metadata).
    pub scale: f64,
    /// Old capture's calibration spin wall time (0 = unknown).
    pub old_calibration_wall_ns: u64,
    /// New capture's calibration spin wall time (0 = unknown).
    pub new_calibration_wall_ns: u64,
    /// Old capture's sweep-pool width (0 = unknown).
    pub old_threads: u64,
    /// New capture's sweep-pool width (0 = unknown).
    pub new_threads: u64,
    /// Non-zero deltas, ascending by path.
    pub deltas: Vec<SpanDelta>,
}

/// The clamp applied to the calibration ratio, mirroring the perf gate:
/// a broken calibration reading cannot wash out (or fabricate) more
/// than a 4× difference.
pub const SCALE_CLAMP: (f64, f64) = (0.25, 4.0);

fn scaled(value: u64, scale: f64) -> i64 {
    (value as f64 * scale).round() as i64
}

/// Computes the calibration scale between two captures.
pub fn calibration_scale(old_cal: u64, new_cal: u64) -> f64 {
    if old_cal == 0 || new_cal == 0 {
        1.0
    } else {
        (new_cal as f64 / old_cal as f64).clamp(SCALE_CLAMP.0, SCALE_CLAMP.1)
    }
}

/// Diffs two profiles. See the module docs for scaling and
/// classification semantics.
pub fn diff_profiles(old: &Profile, new: &Profile) -> ProfileDiff {
    let scale = calibration_scale(old.calibration_wall_ns, new.calibration_wall_ns);
    let mut deltas = Vec::new();
    // Both node lists are sorted by path (Profiler snapshots come from a
    // BTreeMap; from_json sorts) — merge them.
    let (mut i, mut j) = (0, 0);
    while i < old.nodes.len() || j < new.nodes.len() {
        let take_old = match (old.nodes.get(i), new.nodes.get(j)) {
            (Some(o), Some(n)) => {
                if o.path == n.path {
                    deltas.push(changed_delta(old, o, new, n, scale));
                    i += 1;
                    j += 1;
                    continue;
                }
                o.path < n.path
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_old {
            deltas.push(removed_delta(old, &old.nodes[i], scale));
            i += 1;
        } else {
            deltas.push(added_delta(new, &new.nodes[j]));
            j += 1;
        }
    }
    deltas.retain(|d| !d.is_zero());
    ProfileDiff {
        scale,
        old_calibration_wall_ns: old.calibration_wall_ns,
        new_calibration_wall_ns: new.calibration_wall_ns,
        old_threads: old.threads,
        new_threads: new.threads,
        deltas,
    }
}

fn changed_delta(
    old: &Profile,
    o: &ProfileNode,
    new: &Profile,
    n: &ProfileNode,
    scale: f64,
) -> SpanDelta {
    SpanDelta {
        path: n.path.clone(),
        kind: DeltaKind::Changed,
        calls_delta: n.calls as i64 - o.calls as i64,
        wall_delta_ns: n.wall_ns as i64 - scaled(o.wall_ns, scale),
        self_wall_delta_ns: new.self_wall_ns(n) as i64 - scaled(old.self_wall_ns(o), scale),
        cpu_delta_ns: n.cpu_ns as i64 - scaled(o.cpu_ns, scale),
        allocs_delta: n.allocs as i64 - o.allocs as i64,
        alloc_bytes_delta: n.alloc_bytes as i64 - o.alloc_bytes as i64,
    }
}

fn removed_delta(old: &Profile, o: &ProfileNode, scale: f64) -> SpanDelta {
    SpanDelta {
        path: o.path.clone(),
        kind: DeltaKind::Removed,
        calls_delta: -(o.calls as i64),
        wall_delta_ns: -scaled(o.wall_ns, scale),
        self_wall_delta_ns: -scaled(old.self_wall_ns(o), scale),
        cpu_delta_ns: -scaled(o.cpu_ns, scale),
        allocs_delta: -(o.allocs as i64),
        alloc_bytes_delta: -(o.alloc_bytes as i64),
    }
}

fn added_delta(new: &Profile, n: &ProfileNode) -> SpanDelta {
    SpanDelta {
        path: n.path.clone(),
        kind: DeltaKind::Added,
        calls_delta: n.calls as i64,
        wall_delta_ns: n.wall_ns as i64,
        self_wall_delta_ns: new.self_wall_ns(n) as i64,
        cpu_delta_ns: n.cpu_ns as i64,
        allocs_delta: n.allocs as i64,
        alloc_bytes_delta: n.alloc_bytes as i64,
    }
}

impl ProfileDiff {
    /// The top `n` regressions by self wall time: positive
    /// `self_wall_delta_ns` only, descending, ties broken by path — a
    /// deterministic ranking for gate error output.
    pub fn top_by_self_wall(&self, n: usize) -> Vec<&SpanDelta> {
        self.top_by(n, |d| d.self_wall_delta_ns)
    }

    /// The top `n` regressions by allocation count: positive
    /// `allocs_delta` only, descending, ties broken by path.
    pub fn top_by_allocs(&self, n: usize) -> Vec<&SpanDelta> {
        self.top_by(n, |d| d.allocs_delta)
    }

    fn top_by(&self, n: usize, metric: impl Fn(&SpanDelta) -> i64) -> Vec<&SpanDelta> {
        let mut picks: Vec<&SpanDelta> = self.deltas.iter().filter(|d| metric(d) > 0).collect();
        picks.sort_by(|a, b| metric(b).cmp(&metric(a)).then_with(|| a.path.cmp(&b.path)));
        picks.truncate(n);
        picks
    }

    /// Human-readable diff table: a metadata header, then the top `top`
    /// regressions by self wall time and by allocations.
    pub fn table(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "profile diff: scale {:.3} (old cal {:.2} ms, new cal {:.2} ms), \
             threads {} -> {}\n",
            self.scale,
            self.old_calibration_wall_ns as f64 / 1e6,
            self.new_calibration_wall_ns as f64 / 1e6,
            self.old_threads,
            self.new_threads,
        ));
        let (mut added, mut removed, mut changed) = (0usize, 0usize, 0usize);
        for d in &self.deltas {
            match d.kind {
                DeltaKind::Added => added += 1,
                DeltaKind::Removed => removed += 1,
                DeltaKind::Changed => changed += 1,
            }
        }
        out.push_str(&format!(
            "spans: {changed} changed, {added} added, {removed} removed\n",
        ));
        if self.deltas.is_empty() {
            out.push_str("no differences\n");
            return out;
        }
        out.push_str("\ntop regressions by self wall time:\n");
        let by_wall = self.top_by_self_wall(top);
        if by_wall.is_empty() {
            out.push_str("  (none)\n");
        }
        for d in by_wall {
            out.push_str(&format!(
                "  {:>+10.3} ms  {} [{}] (total {:+.3} ms, allocs {:+}, calls {:+})\n",
                d.self_wall_delta_ns as f64 / 1e6,
                d.path,
                d.kind.name(),
                d.wall_delta_ns as f64 / 1e6,
                d.allocs_delta,
                d.calls_delta,
            ));
        }
        out.push_str("\ntop regressions by allocations:\n");
        let by_allocs = self.top_by_allocs(top);
        if by_allocs.is_empty() {
            out.push_str("  (none)\n");
        }
        for d in by_allocs {
            out.push_str(&format!(
                "  {:>+10} allocs  {} [{}] ({:+} bytes, self wall {:+.3} ms)\n",
                d.allocs_delta,
                d.path,
                d.kind.name(),
                d.alloc_bytes_delta,
                d.self_wall_delta_ns as f64 / 1e6,
            ));
        }
        out
    }

    /// Serializes to the machine-readable diff document. Byte-stable:
    /// identical diffs print identical text.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Num(1.0)),
            ("scale".into(), Json::Num(self.scale)),
            (
                "old_calibration_wall_ns".into(),
                Json::Num(self.old_calibration_wall_ns as f64),
            ),
            (
                "new_calibration_wall_ns".into(),
                Json::Num(self.new_calibration_wall_ns as f64),
            ),
            ("old_threads".into(), Json::Num(self.old_threads as f64)),
            ("new_threads".into(), Json::Num(self.new_threads as f64)),
            (
                "deltas".into(),
                Json::Arr(
                    self.deltas
                        .iter()
                        .map(|d| {
                            Json::Obj(vec![
                                ("path".into(), Json::Str(d.path.clone())),
                                ("kind".into(), Json::Str(d.kind.name().into())),
                                ("calls_delta".into(), Json::Num(d.calls_delta as f64)),
                                ("wall_delta_ns".into(), Json::Num(d.wall_delta_ns as f64)),
                                (
                                    "self_wall_delta_ns".into(),
                                    Json::Num(d.self_wall_delta_ns as f64),
                                ),
                                ("cpu_delta_ns".into(), Json::Num(d.cpu_delta_ns as f64)),
                                ("allocs_delta".into(), Json::Num(d.allocs_delta as f64)),
                                (
                                    "alloc_bytes_delta".into(),
                                    Json::Num(d.alloc_bytes_delta as f64),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a diff document produced by [`ProfileDiff::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn from_json(doc: &Json) -> Result<ProfileDiff, String> {
        let num = |k: &str| -> Result<u64, String> {
            doc.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("diff json: `{k}` missing or not a number"))
        };
        let deltas_json = doc
            .get("deltas")
            .and_then(Json::as_arr)
            .ok_or("diff json: missing `deltas` array")?;
        let mut deltas = Vec::with_capacity(deltas_json.len());
        for (i, d) in deltas_json.iter().enumerate() {
            let int = |k: &str| -> Result<i64, String> {
                d.get(k)
                    .and_then(Json::as_i64)
                    .ok_or_else(|| format!("diff json: deltas[{i}].{k} missing or not an integer"))
            };
            deltas.push(SpanDelta {
                path: d
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("diff json: deltas[{i}].path missing"))?
                    .to_string(),
                kind: d
                    .get("kind")
                    .and_then(Json::as_str)
                    .and_then(DeltaKind::from_name)
                    .ok_or_else(|| format!("diff json: deltas[{i}].kind invalid"))?,
                calls_delta: int("calls_delta")?,
                wall_delta_ns: int("wall_delta_ns")?,
                self_wall_delta_ns: int("self_wall_delta_ns")?,
                cpu_delta_ns: int("cpu_delta_ns")?,
                allocs_delta: int("allocs_delta")?,
                alloc_bytes_delta: int("alloc_bytes_delta")?,
            });
        }
        Ok(ProfileDiff {
            scale: doc
                .get("scale")
                .and_then(Json::as_f64)
                .ok_or("diff json: `scale` missing")?,
            old_calibration_wall_ns: num("old_calibration_wall_ns")?,
            new_calibration_wall_ns: num("new_calibration_wall_ns")?,
            old_threads: num("old_threads")?,
            new_threads: num("new_threads")?,
            deltas,
        })
    }
}

/// Loads a `profile.json` file.
///
/// # Errors
///
/// IO or parse errors as strings.
pub fn load_profile(path: &Path) -> Result<Profile, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    Profile::from_json(&doc)
}

/// The shared CLI body of `zr-prof diff` and `zr-bench diff`: loads
/// both profiles, diffs them, optionally writes the machine JSON to
/// `json_out`, and returns the human table.
///
/// # Errors
///
/// Load, parse or write errors as strings.
pub fn run_diff(
    old_path: &Path,
    new_path: &Path,
    top: usize,
    json_out: Option<&Path>,
) -> Result<String, String> {
    let old = load_profile(old_path)?;
    let new = load_profile(new_path)?;
    let diff = diff_profiles(&old, &new);
    if let Some(out) = json_out {
        std::fs::write(out, diff.to_json().to_pretty())
            .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    }
    Ok(diff.table(top))
}
