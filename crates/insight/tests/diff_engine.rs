//! Golden-pair and property tests for the profile-diff engine.

use proptest::prelude::*;
use zr_insight::{calibration_scale, diff_profiles, DeltaKind, ProfileDiff, SCALE_CLAMP};
use zr_prof::{Profile, ProfileNode};

fn node(path: &str, calls: u64, wall: u64, cpu: u64, allocs: u64, bytes: u64) -> ProfileNode {
    ProfileNode {
        path: path.to_string(),
        calls,
        wall_ns: wall,
        cpu_ns: cpu,
        allocs,
        alloc_bytes: bytes,
    }
}

fn profile(nodes: Vec<ProfileNode>, calibration: u64) -> Profile {
    let mut nodes = nodes;
    nodes.sort_by(|a, b| a.path.cmp(&b.path));
    Profile {
        nodes,
        calibration_wall_ns: calibration,
        threads: 1,
    }
}

#[test]
fn identical_profiles_diff_to_nothing() {
    let p = profile(
        vec![
            node("sweep", 1, 10_000, 8_000, 50, 4096),
            node("sweep;cell", 12, 9_000, 7_000, 40, 2048),
        ],
        1_000_000,
    );
    let diff = diff_profiles(&p, &p);
    assert!(diff.deltas.is_empty(), "{:?}", diff.deltas);
    assert_eq!(diff.scale, 1.0);
}

#[test]
fn added_removed_and_renamed_paths_are_classified() {
    // "renamed" = one path removed, another added: the diff reports
    // both, it does not guess at a mapping.
    let old = profile(
        vec![
            node("sweep", 1, 10_000, 0, 10, 100),
            node("sweep;encode_v1", 5, 6_000, 0, 6, 60),
        ],
        0,
    );
    let new = profile(
        vec![
            node("sweep", 1, 10_000, 0, 10, 100),
            node("sweep;encode_v2", 5, 6_000, 0, 6, 60),
        ],
        0,
    );
    let diff = diff_profiles(&old, &new);
    // `sweep` changed only through its self time (children moved), the
    // totals are identical — its self-wall delta is zero both ways
    // (6000 removed, 6000 added), so only the renamed pair survives.
    let kinds: Vec<(&str, DeltaKind)> = diff
        .deltas
        .iter()
        .map(|d| (d.path.as_str(), d.kind))
        .collect();
    assert_eq!(
        kinds,
        vec![
            ("sweep;encode_v1", DeltaKind::Removed),
            ("sweep;encode_v2", DeltaKind::Added),
        ]
    );
}

#[test]
fn sign_conventions_positive_means_new_is_bigger() {
    let old = profile(vec![node("work", 10, 10_000, 5_000, 100, 1_000)], 0);
    let new = profile(vec![node("work", 12, 14_000, 6_000, 80, 1_500)], 0);
    let diff = diff_profiles(&old, &new);
    assert_eq!(diff.deltas.len(), 1);
    let d = &diff.deltas[0];
    assert_eq!(d.kind, DeltaKind::Changed);
    assert_eq!(d.calls_delta, 2);
    assert_eq!(d.wall_delta_ns, 4_000);
    assert_eq!(d.self_wall_delta_ns, 4_000);
    assert_eq!(d.cpu_delta_ns, 1_000);
    assert_eq!(d.allocs_delta, -20, "fewer allocs in new = negative");
    assert_eq!(d.alloc_bytes_delta, 500);
}

#[test]
fn removed_paths_carry_negative_old_values() {
    let old = profile(vec![node("gone", 3, 9_000, 4_000, 30, 300)], 0);
    let new = profile(vec![], 0);
    let diff = diff_profiles(&old, &new);
    assert_eq!(diff.deltas.len(), 1);
    let d = &diff.deltas[0];
    assert_eq!(d.kind, DeltaKind::Removed);
    assert_eq!(d.calls_delta, -3);
    assert_eq!(d.wall_delta_ns, -9_000);
    assert_eq!(d.allocs_delta, -30);
}

#[test]
fn self_time_uses_direct_children() {
    let old = profile(
        vec![
            node("a", 1, 10_000, 0, 0, 0),
            node("a;b", 1, 4_000, 0, 0, 0),
        ],
        0,
    );
    let new = profile(
        vec![
            node("a", 1, 10_000, 0, 0, 0),
            node("a;b", 1, 7_000, 0, 0, 0),
        ],
        0,
    );
    let diff = diff_profiles(&old, &new);
    // `a` total is unchanged, but its self time shrank by the 3000 ns
    // its child grew.
    let a = diff.deltas.iter().find(|d| d.path == "a").expect("a");
    assert_eq!(a.wall_delta_ns, 0);
    assert_eq!(a.self_wall_delta_ns, -3_000);
    let b = diff.deltas.iter().find(|d| d.path == "a;b").expect("a;b");
    assert_eq!(b.self_wall_delta_ns, 3_000);
}

#[test]
fn calibration_scales_old_wall_times() {
    // New machine's calibration spin took 2x as long: the old capture's
    // times are doubled before comparison, so an unchanged-cost span
    // whose raw wall doubled diffs to zero.
    let old = profile(vec![node("work", 1, 10_000, 5_000, 7, 70)], 1_000_000);
    let new = profile(vec![node("work", 1, 20_000, 10_000, 7, 70)], 2_000_000);
    let diff = diff_profiles(&old, &new);
    assert_eq!(diff.scale, 2.0);
    assert!(diff.deltas.is_empty(), "{:?}", diff.deltas);
}

#[test]
fn calibration_scale_clamps_and_defaults() {
    assert_eq!(calibration_scale(0, 5), 1.0, "unknown old -> no scaling");
    assert_eq!(calibration_scale(5, 0), 1.0, "unknown new -> no scaling");
    assert_eq!(calibration_scale(1_000, 100_000), SCALE_CLAMP.1);
    assert_eq!(calibration_scale(100_000, 1_000), SCALE_CLAMP.0);
    assert_eq!(calibration_scale(1_000, 1_500), 1.5);
}

#[test]
fn allocs_are_never_scaled() {
    let old = profile(vec![node("work", 1, 10_000, 0, 100, 1_000)], 1_000_000);
    let new = profile(vec![node("work", 1, 40_000, 0, 100, 1_000)], 4_000_000);
    let diff = diff_profiles(&old, &new);
    assert!(
        diff.deltas.is_empty(),
        "alloc counts are machine-independent and walls cancel: {:?}",
        diff.deltas
    );
}

#[test]
fn top_n_rankings_are_deterministic_and_positive_only() {
    let old = profile(
        vec![
            node("a", 1, 1_000, 0, 10, 0),
            node("b", 1, 1_000, 0, 10, 0),
            node("c", 1, 9_000, 0, 90, 0),
        ],
        0,
    );
    let new = profile(
        vec![
            node("a", 1, 5_000, 0, 40, 0),
            node("b", 1, 5_000, 0, 40, 0),
            node("c", 1, 2_000, 0, 10, 0),
        ],
        0,
    );
    let diff = diff_profiles(&old, &new);
    let by_wall: Vec<&str> = diff
        .top_by_self_wall(10)
        .iter()
        .map(|d| d.path.as_str())
        .collect();
    // c improved (negative) so it is excluded; a/b tie on the metric
    // and break by path.
    assert_eq!(by_wall, vec!["a", "b"]);
    let by_allocs: Vec<&str> = diff
        .top_by_allocs(1)
        .iter()
        .map(|d| d.path.as_str())
        .collect();
    assert_eq!(by_allocs, vec!["a"]);
}

#[test]
fn diff_json_is_byte_deterministic_and_round_trips() {
    let old = profile(
        vec![
            node("sweep", 2, 50_000, 30_000, 500, 65_536),
            node("sweep;refresh", 64, 40_000, 25_000, 400, 32_768),
        ],
        3_000_000,
    );
    let new = profile(
        vec![
            node("sweep", 2, 55_000, 33_000, 480, 65_536),
            node("sweep;transform", 64, 41_000, 26_000, 410, 30_000),
        ],
        3_100_000,
    );
    let first = diff_profiles(&old, &new).to_json().to_pretty();
    let second = diff_profiles(&old, &new).to_json().to_pretty();
    assert_eq!(first, second, "identical inputs, identical bytes");

    let doc = zr_prof::json::Json::parse(&first).expect("parses");
    let back = ProfileDiff::from_json(&doc).expect("round-trips");
    assert_eq!(back, diff_profiles(&old, &new));
}

#[test]
fn table_names_regressions_and_metadata() {
    let old = profile(vec![node("hot", 1, 1_000, 0, 5, 50)], 1_000_000);
    let new = profile(vec![node("hot", 1, 90_000, 0, 500, 5_000)], 1_000_000);
    let diff = diff_profiles(&old, &new);
    let table = diff.table(5);
    assert!(table.contains("hot"), "{table}");
    assert!(table.contains("scale 1.000"), "{table}");
    assert!(table.contains("1 changed, 0 added, 0 removed"), "{table}");
    // Empty diff says so.
    let empty = diff_profiles(&old, &old).table(5);
    assert!(empty.contains("no differences"), "{empty}");
}

fn arb_profile() -> impl Strategy<Value = Profile> {
    proptest::collection::vec(
        (
            proptest::sample::select(vec![
                "sweep",
                "sweep;cell",
                "sweep;cell;refresh",
                "encode",
                "encode;line",
            ]),
            0u64..100,
            0u64..1_000_000,
            0u64..1_000_000,
            0u64..10_000,
            0u64..1_000_000,
        ),
        0..5,
    )
    .prop_map(|rows| {
        let mut nodes: Vec<ProfileNode> = Vec::new();
        for (path, calls, wall, cpu, allocs, bytes) in rows {
            if nodes.iter().all(|n: &ProfileNode| n.path != path) {
                nodes.push(node(path, calls, wall, cpu, allocs, bytes));
            }
        }
        profile(nodes, 1_000_000)
    })
}

proptest! {
    #[test]
    fn diff_of_a_profile_with_itself_is_empty(p in arb_profile()) {
        let diff = diff_profiles(&p, &p);
        prop_assert!(diff.deltas.is_empty());
    }

    #[test]
    fn wall_deltas_are_antisymmetric_at_equal_calibration(
        a in arb_profile(),
        b in arb_profile(),
    ) {
        // With equal calibrations scale is 1.0 both ways, so swapping
        // the operands negates every wall delta.
        let fwd = diff_profiles(&a, &b);
        let rev = diff_profiles(&b, &a);
        prop_assert_eq!(fwd.deltas.len(), rev.deltas.len());
        for (f, r) in fwd.deltas.iter().zip(rev.deltas.iter()) {
            prop_assert_eq!(&f.path, &r.path);
            prop_assert_eq!(f.wall_delta_ns, -r.wall_delta_ns);
            prop_assert_eq!(f.self_wall_delta_ns, -r.self_wall_delta_ns);
            prop_assert_eq!(f.allocs_delta, -r.allocs_delta);
        }
    }
}
