//! Event-driven IPC experiment: the Fig. 17 question answered with the
//! bank-timing simulator of `zr-timing` instead of the closed-form model.
//!
//! For each benchmark, the measured refresh reduction (Fig. 14) is fed
//! into the timing simulator as shorter auto-refresh busy windows; the
//! same synthetic request stream is then timed under conventional refresh
//! and under ZERO-REFRESH, and the latency difference becomes an IPC
//! ratio through the standard memory-boundedness formula.

use zr_timing::{MemoryTimingSim, RefreshDurations, RequestGenerator};
use zr_types::Result;
use zr_workloads::Benchmark;

use super::refresh;
use super::ExperimentConfig;

/// Core-model constants shared with [`crate::timing::IpcModel`].
const BASE_CPI: f64 = 0.6;
const MLP: f64 = 5.0;
const FREQ_GHZ: f64 = 4.0;

/// Requests to simulate per benchmark (enough to cover hundreds of
/// refresh windows at memory-bound arrival rates).
const REQUESTS: usize = 60_000;

/// One benchmark's event-driven timing comparison.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct IpcSimMeasurement {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Normalized refresh operations driving the refresh durations.
    pub normalized_refreshes: f64,
    /// Mean request latency under conventional refresh (ns).
    pub latency_conventional_ns: f64,
    /// Mean request latency under ZERO-REFRESH (ns).
    pub latency_zero_refresh_ns: f64,
    /// Normalized IPC (> 1.0 is a speedup).
    pub normalized_ipc: f64,
}

/// Runs the event-driven comparison for one benchmark at 100% allocation.
///
/// # Errors
///
/// Returns configuration/address errors from the underlying layers.
pub fn measure(benchmark: Benchmark, exp: &ExperimentConfig) -> Result<IpcSimMeasurement> {
    let profile = benchmark.profile();
    let normalized = refresh::measure(benchmark, 1.0, exp)?.normalized;

    let mut cfg = exp.system_config();
    // Table II's tRFC = 28 ns is the scaled DRAMSim2 setting; the
    // bank-blocking cost at the paper's reference density uses the JEDEC
    // 16 Gb refresh cycle time — halved for *per-bank* refresh commands,
    // which cover one bank and complete in roughly half the all-bank time
    // (the LPDDR tRFCpb:tRFCab ratio).
    cfg.timing.t_rfc_ns = zr_energy::DevicePowerModel::t_rfc_ns(16) / 2.0;
    // Arrival rate from memory-boundedness: accesses/ns =
    // (mpki/1000) x (instructions/ns ~ freq/base_cpi, damped by MLP
    // exposure). A simple, monotone mapping is enough: memory-bound
    // workloads stress the banks, compute-bound ones do not.
    let accesses_per_ns = (profile.mpki / 1000.0) * (FREQ_GHZ / BASE_CPI) * 0.5;
    let interval = (1.0 / accesses_per_ns).clamp(5.0, 2000.0);
    let mut gen = RequestGenerator::new(&cfg, benchmark.derive_seed(exp.seed));
    gen.arrival_interval_ns(interval)
        .row_locality(0.6)
        .write_fraction(profile.write_fraction);
    let requests = gen.generate(REQUESTS)?;

    let mut conv = MemoryTimingSim::new(&cfg, RefreshDurations::Conventional)?;
    let mut zr = MemoryTimingSim::new(
        &cfg,
        RefreshDurations::Uniform {
            refreshed_fraction: normalized,
        },
    )?;
    let sc = conv.process(&requests)?;
    let sz = zr.process(&requests)?;
    let ipc_c = sc.ipc_estimate(BASE_CPI, profile.mpki, MLP, FREQ_GHZ);
    let ipc_z = sz.ipc_estimate(BASE_CPI, profile.mpki, MLP, FREQ_GHZ);
    Ok(IpcSimMeasurement {
        benchmark: benchmark.name(),
        normalized_refreshes: normalized,
        latency_conventional_ns: sc.mean_latency_ns(),
        latency_zero_refresh_ns: sz.mean_latency_ns(),
        normalized_ipc: ipc_z / ipc_c,
    })
}

/// The full event-driven Fig. 17 sweep.
///
/// # Errors
///
/// See [`measure`].
pub fn suite_sweep(exp: &ExperimentConfig) -> Result<Vec<IpcSimMeasurement>> {
    Benchmark::all().iter().map(|&b| measure(b, exp)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_refresh_never_slows_down() {
        let exp = ExperimentConfig::tiny_test();
        let m = measure(Benchmark::Mcf, &exp).unwrap();
        assert!(m.normalized_ipc >= 1.0 - 1e-9, "ipc {}", m.normalized_ipc);
        assert!(m.latency_zero_refresh_ns <= m.latency_conventional_ns + 1e-9);
    }

    #[test]
    fn memory_bound_gains_more_in_the_event_model() {
        let exp = ExperimentConfig::tiny_test();
        let gems = measure(Benchmark::GemsFdtd, &exp).unwrap();
        let gobmk = measure(Benchmark::Gobmk, &exp).unwrap();
        assert!(
            gems.normalized_ipc >= gobmk.normalized_ipc,
            "gems {} vs gobmk {}",
            gems.normalized_ipc,
            gobmk.normalized_ipc
        );
    }
}
