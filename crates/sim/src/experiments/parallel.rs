//! Deterministic parallel execution of experiment sweeps.
//!
//! [`sweep_with`] is the one bridge between the experiment drivers and
//! the [`zr_par`] work pool. It owns the part the raw pool cannot know
//! about: the observability substrate. Each job runs against a *forked*
//! [`zr_telemetry::Telemetry`] instance (and a private in-memory
//! [`zr_trace::TraceRecorder`] when tracing is active), so workers never
//! contend on — or interleave into — the parent's registry, event sink
//! or trace stream. After the pool joins, the per-job contexts are
//! absorbed back into the parent **in submission order**, which makes
//! the merged counters, histograms, event lines and trace bytes
//! independent of the thread count and of scheduling.
//!
//! The determinism contract, concretely:
//!
//! - the returned `Vec` is in submission order for every thread count;
//! - with several failing jobs, the error returned is the one from the
//!   lowest submission index (exactly what a serial loop would surface);
//! - figure JSON reports are byte-identical for `ZR_THREADS=1` and
//!   `ZR_THREADS=N` (asserted by `crates/bench/tests/parallel_equivalence.rs`);
//! - merged telemetry registry snapshots are identical for any thread
//!   count. The raw `events.jsonl` *line order* groups by job rather
//!   than interleaving, and per-line sequence numbers restart per job —
//!   aggregate counts are exact, the interleaving is not promised.
//!
//! `threads <= 1` (or a single job) takes a literal serial path — no
//! pool, no forked contexts — so `ZR_THREADS=1` reproduces the
//! pre-parallelism behaviour bit for bit, event stream included.

use std::sync::Arc;

use zr_telemetry::Telemetry;
use zr_trace::TraceRecorder;
use zr_types::Result;

/// Runs `jobs` instances of `f` on a deterministic work pool of
/// `threads` workers and returns the results in submission order.
///
/// Each pool job executes with a forked telemetry context (and, when
/// tracing is active, a private memory trace recorder) re-rooted under
/// the submitting thread's current scope path; contexts are merged back
/// in submission order after the join. See the module docs for the full
/// determinism contract.
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing job, as a serial
/// loop would.
pub fn sweep_with<T, F>(threads: usize, jobs: usize, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    if threads <= 1 || jobs <= 1 {
        return (0..jobs).map(f).collect();
    }

    let parent_telemetry = Telemetry::current();
    let parent_trace = TraceRecorder::current();
    let parent_scope = Telemetry::current_scope_path();

    let outcomes = zr_par::run_jobs(threads, jobs, |i| {
        let job_telemetry = parent_telemetry.fork_job();
        let job_trace = if parent_trace.is_active() {
            Some(Arc::new(TraceRecorder::memory()))
        } else {
            None
        };

        let _tel_guard = Telemetry::push_current(Arc::clone(&job_telemetry));
        let _trace_guard = job_trace
            .as_ref()
            .map(|t| TraceRecorder::push_current(Arc::clone(t)));
        // Re-root the worker's (empty) span stack under the submitting
        // thread's scope so per-job events keep the figure-level prefix
        // a serial run would give them.
        let _scope_guard = parent_scope.as_deref().map(|p| job_telemetry.scope(p));

        let out = f(i);
        (out, job_telemetry, job_trace)
    });

    let mut results = Vec::with_capacity(jobs);
    let mut first_err = None;
    for (out, job_telemetry, job_trace) in outcomes {
        parent_telemetry.absorb_job(&job_telemetry);
        if let Some(trace) = job_trace {
            parent_trace.absorb_bytes(&trace.take_bytes());
        }
        match out {
            Ok(v) => results.push(v),
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    match first_err {
        None => Ok(results),
        Some(e) => Err(e),
    }
}

/// [`sweep_with`] at the process-default width ([`zr_par::thread_count`]).
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing job.
pub fn sweep<T, F>(jobs: usize, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    sweep_with(zr_par::thread_count(), jobs, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zr_types::Error;

    #[test]
    fn sweep_matches_serial_order() {
        let serial = sweep_with(1, 16, |i| Ok(i * i)).unwrap();
        let pooled = sweep_with(4, 16, |i| Ok(i * i)).unwrap();
        assert_eq!(serial, (0..16).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(serial, pooled);
    }

    #[test]
    fn sweep_surfaces_lowest_indexed_error() {
        let err = sweep_with(4, 12, |i| -> Result<usize> {
            if i % 3 == 2 {
                Err(Error::invalid_config(format!("job {i}")))
            } else {
                Ok(i)
            }
        })
        .unwrap_err();
        assert!(err.to_string().contains("job 2"), "got: {err}");
    }

    #[test]
    fn pooled_sweep_merges_job_counters_into_parent() {
        let parent = Arc::new(Telemetry::new());
        let _guard = Telemetry::push_current(Arc::clone(&parent));
        sweep_with(4, 8, |i| {
            Telemetry::current()
                .registry()
                .counter("par.test.jobs")
                .add(1 + i as u64);
            Ok(())
        })
        .unwrap();
        let snap = parent.registry().snapshot();
        assert_eq!(
            snap.counters.get("par.test.jobs").copied(),
            Some((1..=8).sum::<u64>())
        );
    }
}
