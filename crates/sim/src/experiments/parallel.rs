//! Deterministic parallel execution of experiment sweeps.
//!
//! [`sweep_with`] is the one bridge between the experiment drivers and
//! the [`zr_par`] work pool. It owns the part the raw pool cannot know
//! about: the observability substrate. Each job runs against a *forked*
//! [`zr_telemetry::Telemetry`] instance (and a private in-memory
//! [`zr_trace::TraceRecorder`] when tracing is active, and a private
//! [`zr_xray::XrayRecorder`] when the charge-domain capture is active),
//! so workers never contend on — or interleave into — the parent's
//! registry, event sink, trace stream or xray buffers. After the pool
//! joins, the per-job contexts are absorbed back into the parent **in
//! submission order**, which makes the merged counters, histograms,
//! event lines, trace bytes and xray captures independent of the thread
//! count and of scheduling.
//!
//! The determinism contract, concretely:
//!
//! - the returned `Vec` is in submission order for every thread count;
//! - with several failing jobs, the error returned is the one from the
//!   lowest submission index (exactly what a serial loop would surface);
//! - figure JSON reports are byte-identical for `ZR_THREADS=1` and
//!   `ZR_THREADS=N` (asserted by `crates/bench/tests/parallel_equivalence.rs`);
//! - merged telemetry registry snapshots are identical for any thread
//!   count. The raw `events.jsonl` *line order* groups by job rather
//!   than interleaving, and per-line sequence numbers restart per job —
//!   aggregate counts are exact, the interleaving is not promised.
//!
//! `threads <= 1` (or a single job) takes a literal serial path — no
//! pool, no forked contexts — so `ZR_THREADS=1` reproduces the
//! pre-parallelism behaviour bit for bit, event stream included.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use zr_telemetry::{Event, Snapshot, Telemetry};
use zr_trace::TraceRecorder;
use zr_types::Result;
use zr_xray::XrayRecorder;

/// Environment variable enabling the live sweep progress reporter
/// (`ZR_PROGRESS=1`): a throttled single-line status on stderr plus
/// `sweep_progress` telemetry events. Progress never touches stdout,
/// figure JSON or metric snapshots, so enabling it keeps every figure
/// artifact byte-identical.
pub const ENV_PROGRESS: &str = "ZR_PROGRESS";

/// Whether the progress reporter is enabled (`ZR_PROGRESS=1`).
pub fn progress_enabled() -> bool {
    std::env::var(ENV_PROGRESS)
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Minimum gap between two progress reports (the final one excepted).
const PROGRESS_THROTTLE_US: u64 = 200_000;

/// Chip-row work units in a registry snapshot: rows refreshed plus rows
/// skipped. Read from [`Snapshot`] (never via `registry().counter()`,
/// which would *register* the counters and perturb snapshot output).
fn snapshot_chip_rows(snap: &Snapshot) -> u64 {
    snap.counter("dram.refresh.rows_refreshed") + snap.counter("dram.refresh.rows_skipped")
}

/// Renders one progress status line (without the trailing newline).
/// Pure so tests can pin the format.
pub(crate) fn render_progress(
    label: &str,
    done: u64,
    total: u64,
    chip_rows: u64,
    elapsed_us: u64,
) -> String {
    let pct = if total == 0 {
        100.0
    } else {
        done as f64 * 100.0 / total as f64
    };
    let secs = elapsed_us as f64 / 1e6;
    let rate = if secs > 0.0 {
        chip_rows as f64 / secs
    } else {
        0.0
    };
    let eta_s = if done == 0 || done >= total {
        0.0
    } else {
        secs / done as f64 * (total - done) as f64
    };
    format!(
        "[zr-progress] {label}: {done}/{total} cells ({pct:.0}%), {rate:.0} chip_rows/s, ETA {eta_s:.0}s"
    )
}

/// The `ZR_PROGRESS=1` reporter: fed per-cell completion callbacks from
/// the pool (or the serial loop), accumulates chip-row work units, and
/// reports at most once per [`PROGRESS_THROTTLE_US`] — always including
/// a final `total/total` report. Reports go to stderr (one `write_all`
/// per line, so concurrent writers cannot shear a line) and, when an
/// event sink is installed, to the parent telemetry as
/// [`Event::SweepProgress`].
struct SweepProgress {
    label: String,
    total: u64,
    chip_rows: AtomicU64,
    started: Instant,
    /// Elapsed micros at the last report (throttle state).
    last_report_us: AtomicU64,
    telemetry: Arc<Telemetry>,
}

impl SweepProgress {
    fn new(total: usize, telemetry: Arc<Telemetry>) -> SweepProgress {
        SweepProgress {
            label: Telemetry::current_scope_path().unwrap_or_else(|| "sweep".to_string()),
            total: total as u64,
            chip_rows: AtomicU64::new(0),
            started: Instant::now(),
            last_report_us: AtomicU64::new(0),
            telemetry,
        }
    }

    /// Adds a completed cell's chip-row work units.
    fn add_units(&self, units: u64) {
        self.chip_rows.fetch_add(units, Ordering::Relaxed);
    }

    /// Records that `done` cells have completed and reports if due. The
    /// final cell (`done == total`) always reports, so the last line a
    /// consumer sees reads `total/total`.
    fn cell_done(&self, done: u64) {
        let now_us = self.started.elapsed().as_micros() as u64;
        let is_final = done >= self.total;
        let last = self.last_report_us.load(Ordering::Relaxed);
        if !is_final {
            if now_us.saturating_sub(last) < PROGRESS_THROTTLE_US {
                return;
            }
            // One reporter per throttle window: the CAS loser skips.
            if self
                .last_report_us
                .compare_exchange(last, now_us, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
            {
                return;
            }
        } else {
            // Never store 0 for the final report: a sub-microsecond sweep
            // would otherwise be indistinguishable from "never reported".
            self.last_report_us.store(now_us.max(1), Ordering::Relaxed);
        }
        let chip_rows = self.chip_rows.load(Ordering::Relaxed);
        let line = render_progress(&self.label, done, self.total, chip_rows, now_us);
        {
            use std::io::Write;
            let mut err = std::io::stderr().lock();
            let _ = err.write_all(format!("{line}\n").as_bytes());
        }
        self.telemetry.emit(|| Event::SweepProgress {
            done,
            total: self.total,
            chip_rows,
            elapsed_us: now_us,
        });
    }
}

/// Runs `jobs` instances of `f` on a deterministic work pool of
/// `threads` workers and returns the results in submission order.
///
/// Each pool job executes with a forked telemetry context (and, when
/// tracing is active, a private memory trace recorder) re-rooted under
/// the submitting thread's current scope path; contexts are merged back
/// in submission order after the join. See the module docs for the full
/// determinism contract.
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing job, as a serial
/// loop would.
pub fn sweep_with<T, F>(threads: usize, jobs: usize, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    let progress =
        (progress_enabled() && jobs > 0).then(|| SweepProgress::new(jobs, Telemetry::current()));

    if threads <= 1 || jobs <= 1 {
        let Some(progress) = progress else {
            return (0..jobs).map(f).collect();
        };
        // Serial cells mutate the parent registry directly, so per-cell
        // work units are snapshot deltas against the pre-sweep reading.
        let telemetry = Telemetry::current();
        let mut seen = snapshot_chip_rows(&telemetry.snapshot());
        return (0..jobs)
            .map(|i| {
                let out = f(i);
                let now = snapshot_chip_rows(&telemetry.snapshot());
                progress.add_units(now.saturating_sub(seen));
                seen = now;
                progress.cell_done(i as u64 + 1);
                out
            })
            .collect();
    }

    let parent_telemetry = Telemetry::current();
    let parent_trace = TraceRecorder::current();
    let parent_xray = XrayRecorder::current();
    let parent_scope = Telemetry::current_scope_path();

    let outcomes = zr_par::run_jobs_observed(
        threads,
        jobs,
        |i| {
            let job_telemetry = parent_telemetry.fork_job();
            let job_trace = if parent_trace.is_active() {
                Some(Arc::new(TraceRecorder::memory()))
            } else {
                None
            };
            let job_xray = if parent_xray.is_active() {
                Some(Arc::new(parent_xray.fork_job()))
            } else {
                None
            };

            let _tel_guard = Telemetry::push_current(Arc::clone(&job_telemetry));
            let _trace_guard = job_trace
                .as_ref()
                .map(|t| TraceRecorder::push_current(Arc::clone(t)));
            let _xray_guard = job_xray
                .as_ref()
                .map(|x| XrayRecorder::push_current(Arc::clone(x)));
            // Re-root the worker's (empty) span stack under the submitting
            // thread's scope so per-job events keep the figure-level prefix
            // a serial run would give them.
            let _scope_guard = parent_scope.as_deref().map(|p| job_telemetry.scope(p));

            let out = f(i);
            if let Some(progress) = &progress {
                // The forked instance started from zero counters, so its
                // snapshot is exactly this cell's contribution.
                progress.add_units(snapshot_chip_rows(&job_telemetry.snapshot()));
            }
            (out, job_telemetry, job_trace, job_xray)
        },
        |_, completed, _| {
            if let Some(progress) = &progress {
                progress.cell_done(completed as u64);
            }
        },
    );

    let mut results = Vec::with_capacity(jobs);
    let mut first_err = None;
    for (out, job_telemetry, job_trace, job_xray) in outcomes {
        parent_telemetry.absorb_job(&job_telemetry);
        if let Some(trace) = job_trace {
            parent_trace.absorb_bytes(&trace.take_bytes());
        }
        if let Some(xray) = job_xray {
            parent_xray.absorb(&xray);
        }
        match out {
            Ok(v) => results.push(v),
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    match first_err {
        None => Ok(results),
        Some(e) => Err(e),
    }
}

/// [`sweep_with`] at the process-default width ([`zr_par::thread_count`]).
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing job.
pub fn sweep<T, F>(jobs: usize, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    sweep_with(zr_par::thread_count(), jobs, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zr_types::Error;

    #[test]
    fn sweep_matches_serial_order() {
        let serial = sweep_with(1, 16, |i| Ok(i * i)).unwrap();
        let pooled = sweep_with(4, 16, |i| Ok(i * i)).unwrap();
        assert_eq!(serial, (0..16).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(serial, pooled);
    }

    #[test]
    fn sweep_surfaces_lowest_indexed_error() {
        let err = sweep_with(4, 12, |i| -> Result<usize> {
            if i % 3 == 2 {
                Err(Error::invalid_config(format!("job {i}")))
            } else {
                Ok(i)
            }
        })
        .unwrap_err();
        assert!(err.to_string().contains("job 2"), "got: {err}");
    }

    #[test]
    fn progress_line_format_is_stable() {
        assert_eq!(
            render_progress("fig14", 3, 12, 9_000, 1_000_000),
            "[zr-progress] fig14: 3/12 cells (25%), 9000 chip_rows/s, ETA 3s"
        );
        // Final report: 100%, no ETA left.
        assert_eq!(
            render_progress("fig14", 12, 12, 9_000, 2_000_000),
            "[zr-progress] fig14: 12/12 cells (100%), 4500 chip_rows/s, ETA 0s"
        );
        // Degenerate inputs stay finite.
        assert_eq!(
            render_progress("s", 0, 0, 0, 0),
            "[zr-progress] s: 0/0 cells (100%), 0 chip_rows/s, ETA 0s"
        );
    }

    #[test]
    fn progress_reporter_counts_units_and_always_reports_final() {
        let telemetry = Arc::new(Telemetry::new());
        let progress = SweepProgress::new(4, Arc::clone(&telemetry));
        for done in 1..=4u64 {
            progress.add_units(100);
            progress.cell_done(done);
        }
        assert_eq!(progress.chip_rows.load(Ordering::Relaxed), 400);
        // The final cell reported despite the throttle window.
        assert!(progress.last_report_us.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn snapshot_chip_rows_reads_without_registering() {
        let telemetry = Telemetry::new();
        assert_eq!(snapshot_chip_rows(&telemetry.snapshot()), 0);
        // Reading must not have registered the counters.
        assert!(telemetry.snapshot().counters.is_empty());
        telemetry
            .registry()
            .counter("dram.refresh.rows_refreshed")
            .add(7);
        telemetry
            .registry()
            .counter("dram.refresh.rows_skipped")
            .add(5);
        assert_eq!(snapshot_chip_rows(&telemetry.snapshot()), 12);
    }

    #[test]
    fn pooled_sweep_merges_job_counters_into_parent() {
        let parent = Arc::new(Telemetry::new());
        let _guard = Telemetry::push_current(Arc::clone(&parent));
        sweep_with(4, 8, |i| {
            Telemetry::current()
                .registry()
                .counter("par.test.jobs")
                .add(1 + i as u64);
            Ok(())
        })
        .unwrap();
        let snap = parent.registry().snapshot();
        assert_eq!(
            snap.counters.get("par.test.jobs").copied(),
            Some((1..=8).sum::<u64>())
        );
    }
}
