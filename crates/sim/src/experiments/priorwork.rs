//! Prior-work comparison (§II-D): ZERO-REFRESH against the refresh-
//! skipping families the paper positions itself against, on identical
//! images.
//!
//! | scheme | skips | needs |
//! |---|---|---|
//! | ZERO-REFRESH | discharged rows (incl. transformed values) | nothing new |
//! | ZIB (Patel et al.) | naturally all-zero rows | 1/8–1/32 capacity |
//! | Validity oracle (SRA/ESKIMO/PARIS) | unallocated rows | OS↔DRAM interface |
//! | Smart Refresh | rows touched this window | per-row counters |

use zr_baselines::{SmartRefresh, ZibModel};
use zr_dram::RefreshPolicy;
use zr_types::{Result, TransformConfig};
use zr_workloads::trace::TraceGenerator;
use zr_workloads::Benchmark;

use super::population::build_system;
use super::{refresh, ExperimentConfig};

/// One benchmark's normalized refresh operations under each scheme.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct PriorWorkComparison {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Allocated fraction of the scenario.
    pub alloc_fraction: f64,
    /// ZERO-REFRESH (full transformation).
    pub zero_refresh: f64,
    /// ZIB on the untransformed image (plus its capacity overhead).
    pub zib: f64,
    /// ZIB's DRAM capacity overhead (indicator bits, 8-bit granules).
    pub zib_overhead: f64,
    /// The validity oracle: refreshes exactly the allocated rows.
    pub validity_oracle: f64,
    /// Smart Refresh at the paper's reference 32 GB capacity.
    pub smart_refresh: f64,
}

/// Compares all schemes for one benchmark/allocation pair.
///
/// # Errors
///
/// Returns configuration/address errors from the underlying layers.
pub fn compare(
    benchmark: Benchmark,
    alloc_fraction: f64,
    exp: &ExperimentConfig,
) -> Result<PriorWorkComparison> {
    // ZERO-REFRESH: the standard measurement.
    let zero = refresh::measure(benchmark, alloc_fraction, exp)?.normalized;

    // ZIB: same image stored *without* transformation; skippable rows are
    // the naturally discharged ones.
    let raw_exp = ExperimentConfig {
        transform: TransformConfig::disabled(),
        ..exp.clone()
    };
    let ps = build_system(
        benchmark,
        alloc_fraction,
        RefreshPolicy::Conventional,
        &raw_exp,
    )?;
    let zib_model = ZibModel::new(8)?;
    let zib = 1.0 - zib_model.skippable_fraction(ps.system.controller().rank());

    // Validity oracle: exactly the allocated fraction refreshes.
    let validity_oracle = alloc_fraction;

    // Smart Refresh at reference capacity: the touched working set skips.
    let mut cfg = exp.system_config();
    cfg.dram.capacity_bytes = 32 << 30;
    let mut smart = SmartRefresh::new(&cfg)?;
    let geom = smart.geometry().clone();
    let mut trace = TraceGenerator::new(benchmark.profile(), Vec::new(), 64, exp.seed);
    let rank_rows = geom.rows_per_bank() * geom.num_banks() as u64;
    for page in trace.window_touched_pages(rank_rows, geom.row_bytes() as u64) {
        smart.note_access(
            zr_types::geometry::BankId((page % geom.num_banks() as u64) as usize),
            zr_types::geometry::RowIndex(page / geom.num_banks() as u64),
        );
    }
    let smart_refresh = smart.run_window().normalized_refreshes();

    Ok(PriorWorkComparison {
        benchmark: benchmark.name(),
        alloc_fraction,
        zero_refresh: zero,
        zib,
        zib_overhead: zib_model.capacity_overhead(),
        validity_oracle,
        smart_refresh,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_refresh_beats_zib_on_allocated_memory() {
        // ZIB only harvests natural zeros; the transformation is the
        // difference between ~2% and ~35% reduction at 100% allocation.
        let exp = ExperimentConfig::tiny_test();
        let c = compare(Benchmark::Gcc, 1.0, &exp).unwrap();
        assert!(
            c.zero_refresh + 0.15 < c.zib,
            "zero {} vs zib {}",
            c.zero_refresh,
            c.zib
        );
        assert!((c.zib_overhead - 0.125).abs() < 1e-12);
    }

    #[test]
    fn oracle_cannot_skip_allocated_memory() {
        let exp = ExperimentConfig::tiny_test();
        let c = compare(Benchmark::GemsFdtd, 1.0, &exp).unwrap();
        assert_eq!(c.validity_oracle, 1.0);
        assert!(c.zero_refresh < 0.7);
    }

    #[test]
    fn oracle_and_zero_refresh_agree_on_idle_memory() {
        // For mostly-idle memory both skip the idle part; ZERO-REFRESH
        // additionally harvests the allocated values.
        let exp = ExperimentConfig::tiny_test();
        let c = compare(Benchmark::Gcc, 0.3, &exp).unwrap();
        assert!(c.zero_refresh <= c.validity_oracle + 0.02);
    }
}
