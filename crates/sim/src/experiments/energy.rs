//! Refresh-energy experiment (Fig. 15): normalized energy including every
//! ZERO-REFRESH overhead (EBDI operations, status-table traffic, SRAM
//! leakage).

use zero_refresh::EnergyAccountant;
use zr_dram::{RefreshPolicy, SweepArena, WindowStats};
use zr_types::geometry::LineAddr;
use zr_types::Result;
use zr_workloads::image::LINES_PER_REGION;
use zr_workloads::trace::TraceGenerator;
use zr_workloads::trace::TraceWrite;
use zr_workloads::Benchmark;

use super::population::build_system;
use super::ExperimentConfig;

/// Measured energy behaviour of one benchmark/scenario pair.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct EnergyMeasurement {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Allocated memory fraction of the scenario.
    pub alloc_fraction: f64,
    /// Refresh energy (with all overheads) normalized to the conventional
    /// baseline — the Fig. 15 y-axis.
    pub normalized_energy: f64,
    /// Normalized refresh *operations* of the same run, for correlation
    /// with Fig. 14.
    pub normalized_refreshes: f64,
}

/// Measures the normalized refresh energy for one benchmark at one
/// allocation fraction. Only the steady-state measurement windows are
/// priced (population and the scan window are excluded on both sides of
/// the comparison).
///
/// # Errors
///
/// Returns configuration/address errors from the underlying layers.
pub fn measure(
    benchmark: Benchmark,
    alloc_fraction: f64,
    exp: &ExperimentConfig,
) -> Result<EnergyMeasurement> {
    let mut ps = build_system(benchmark, alloc_fraction, RefreshPolicy::ChargeAware, exp)?;
    let profile = benchmark.profile();
    let mut trace = TraceGenerator::new(
        profile.clone(),
        ps.region_classes.clone(),
        LINES_PER_REGION,
        benchmark.derive_seed(exp.seed) ^ 0xACCE55,
    );
    let mut arena = SweepArena::new();
    let mut writes: Vec<TraceWrite> = Vec::new();
    ps.system.run_refresh_window_with(&mut arena); // unmeasured scan

    let totals0 = ps.system.controller().engine().totals();
    let ebdi0 = ps.system.access_stats().ebdi_operations();
    let mut stats = WindowStats::default();
    let mut trace_writes = 0u64;
    for _ in 0..exp.windows {
        trace.window_writes_into(exp.window_scale(), &mut writes);
        for w in &writes {
            let line = LineAddr(w.page * LINES_PER_REGION as u64 + w.line_in_page as u64);
            ps.system.write_line_with(line, &w.data, &mut arena)?;
            trace_writes += 1;
        }
        stats.accumulate(&ps.system.run_refresh_window_with(&mut arena));
    }
    let totals1 = ps.system.controller().engine().totals();
    let ebdi_writes = ps.system.access_stats().ebdi_operations() - ebdi0;
    debug_assert_eq!(ebdi_writes, trace_writes);
    // The trace generates writes; the EBDI module also runs on every read.
    // Estimate reads from the workload's write fraction.
    let read_ops = if profile.write_fraction > 0.0 {
        (ebdi_writes as f64 * (1.0 - profile.write_fraction) / profile.write_fraction) as u64
    } else {
        0
    };

    let cfg = exp.system_config();
    let accountant = EnergyAccountant::new(&cfg)?;
    let sram_bytes = zr_energy::accounting::ACCESS_TABLE_FULLSCALE_BYTES;
    let breakdown = accountant.breakdown(
        totals1.rows_refreshed - totals0.rows_refreshed,
        totals1.table_reads - totals0.table_reads,
        totals1.table_writes - totals0.table_writes,
        ebdi_writes + read_ops,
        sram_bytes,
        exp.windows,
    );
    Ok(EnergyMeasurement {
        benchmark: benchmark.name(),
        alloc_fraction,
        normalized_energy: accountant.normalized(&breakdown, exp.windows),
        normalized_refreshes: stats.normalized_refreshes(),
    })
}

/// The Fig. 15 sweep: every benchmark × the four allocation scenarios,
/// measured on the [`super::parallel`] sweep pool at
/// [`ExperimentConfig::effective_threads`] with deterministic ordering.
///
/// # Errors
///
/// Returns configuration/address errors from the underlying layers.
pub fn allocation_sweep(exp: &ExperimentConfig) -> Result<Vec<EnergyMeasurement>> {
    const ALLOCS: [f64; 4] = [1.0, 0.88, 0.70, 0.28];
    let benches = Benchmark::all();
    super::parallel::sweep_with(exp.effective_threads(), ALLOCS.len() * benches.len(), |i| {
        measure(benches[i % benches.len()], ALLOCS[i / benches.len()], exp)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_tracks_refresh_reduction_with_small_overhead() {
        let exp = ExperimentConfig::tiny_test();
        let m = measure(Benchmark::Gcc, 0.5, &exp).unwrap();
        // Fig. 15 sits slightly above Fig. 14 (overheads), but far below 1.
        assert!(m.normalized_energy < 1.0);
        assert!(
            m.normalized_energy >= m.normalized_refreshes - 1e-9,
            "energy {} below refresh {}",
            m.normalized_energy,
            m.normalized_refreshes
        );
        assert!(
            m.normalized_energy - m.normalized_refreshes < 0.15,
            "overhead too large: {} vs {}",
            m.normalized_energy,
            m.normalized_refreshes
        );
    }

    #[test]
    fn idle_memory_energy_is_small() {
        let exp = ExperimentConfig::tiny_test();
        let m = measure(Benchmark::Gcc, 0.0, &exp).unwrap();
        assert!(m.normalized_energy < 0.2, "energy {}", m.normalized_energy);
    }
}
