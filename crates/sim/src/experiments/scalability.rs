//! Scalability experiment (Fig. 19): Smart Refresh vs ZERO-REFRESH as
//! capacity grows from 4 GB to 32 GB.
//!
//! Smart Refresh skips exactly the rows the workload touches per window,
//! so its benefit shrinks with capacity for a fixed working set. The
//! value-based mechanism is capacity-invariant: the paper fills unused
//! space with benchmark data (not zeros) for fairness, which this driver
//! reproduces by measuring ZERO-REFRESH at 100% allocation.

use zr_baselines::SmartRefresh;
use zr_types::geometry::{BankId, RowIndex};
use zr_types::Result;
use zr_workloads::trace::TraceGenerator;
use zr_workloads::Benchmark;

use super::refresh;
use super::ExperimentConfig;

/// One capacity point of the Fig. 19 comparison.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ScalabilityPoint {
    /// Memory capacity in bytes.
    pub capacity_bytes: u64,
    /// Smart Refresh's normalized refresh operations at this capacity.
    pub smart_normalized: f64,
    /// ZERO-REFRESH's normalized refresh operations (capacity-invariant;
    /// measured once at the experiment scale).
    pub zero_normalized: f64,
}

/// Runs the Smart Refresh model for one window at `capacity_bytes` with
/// the benchmark's working set.
///
/// # Errors
///
/// Returns configuration errors from the underlying layers.
pub fn smart_refresh_normalized(
    benchmark: Benchmark,
    capacity_bytes: u64,
    exp: &ExperimentConfig,
) -> Result<f64> {
    let mut cfg = exp.system_config();
    cfg.dram.capacity_bytes = capacity_bytes;
    let mut smart = SmartRefresh::new(&cfg)?;
    let geom = smart.geometry().clone();
    let profile = benchmark.profile();
    let mut trace = TraceGenerator::new(profile, Vec::new(), 64, exp.seed);
    let rank_rows = geom.rows_per_bank() * geom.num_banks() as u64;
    let touched = trace.window_touched_pages(rank_rows, geom.row_bytes() as u64);
    for page in touched {
        // Page index -> (bank, row) under the row-interleaved mapping.
        let bank = BankId((page % geom.num_banks() as u64) as usize);
        let row = RowIndex(page / geom.num_banks() as u64);
        smart.note_access(bank, row);
    }
    Ok(smart.run_window().normalized_refreshes())
}

/// The Fig. 19 sweep for one benchmark over a capacity range.
///
/// `idle_fraction` > 0 reproduces the figure's "+30% idle" variant, where
/// ZERO-REFRESH additionally skips the OS-cleansed idle memory.
///
/// # Errors
///
/// Returns configuration/address errors from the underlying layers.
pub fn capacity_sweep(
    benchmark: Benchmark,
    capacities: &[u64],
    idle_fraction: f64,
    exp: &ExperimentConfig,
) -> Result<Vec<ScalabilityPoint>> {
    // ZERO-REFRESH is value-based: measure once at the experiment scale.
    // (`zero_is_capacity_invariant` below demonstrates the invariance.)
    let zero = refresh::measure(benchmark, 1.0 - idle_fraction, exp)?.normalized;
    super::parallel::sweep_with(exp.effective_threads(), capacities.len(), |i| {
        Ok(ScalabilityPoint {
            capacity_bytes: capacities[i],
            smart_normalized: smart_refresh_normalized(benchmark, capacities[i], exp)?,
            zero_normalized: zero,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_refresh_degrades_with_capacity() {
        let exp = ExperimentConfig::tiny_test();
        // mcf's ~1.9 GB working set against growing memories (Fig. 19).
        let n4 = smart_refresh_normalized(Benchmark::Mcf, 4 << 30, &exp).unwrap();
        let n32 = smart_refresh_normalized(Benchmark::Mcf, 32 << 30, &exp).unwrap();
        assert!((n4 - 0.526).abs() < 0.02, "4 GB normalized {n4}");
        assert!((n32 - 0.941).abs() < 0.02, "32 GB normalized {n32}");
    }

    #[test]
    fn zero_is_capacity_invariant() {
        // The same image statistics at two simulated capacities give the
        // same normalized refresh count (within content-sampling noise).
        let a = refresh::measure(
            Benchmark::Gcc,
            1.0,
            &ExperimentConfig {
                capacity_bytes: 4 << 20,
                ..ExperimentConfig::tiny_test()
            },
        )
        .unwrap()
        .normalized;
        let b = refresh::measure(
            Benchmark::Gcc,
            1.0,
            &ExperimentConfig {
                capacity_bytes: 8 << 20,
                ..ExperimentConfig::tiny_test()
            },
        )
        .unwrap()
        .normalized;
        assert!((a - b).abs() < 0.06, "4 MiB {a} vs 8 MiB {b}");
    }

    #[test]
    fn sweep_produces_crossover_shape() {
        let exp = ExperimentConfig::tiny_test();
        let pts = capacity_sweep(
            Benchmark::Mcf,
            &[4 << 30, 8 << 30, 16 << 30, 32 << 30],
            0.0,
            &exp,
        )
        .unwrap();
        assert_eq!(pts.len(), 4);
        // Smart degrades monotonically; ZERO-REFRESH stays flat.
        for w in pts.windows(2) {
            assert!(w[1].smart_normalized >= w[0].smart_normalized);
            assert_eq!(w[1].zero_normalized, w[0].zero_normalized);
        }
        // At large capacity ZERO-REFRESH wins.
        assert!(pts[3].zero_normalized < pts[3].smart_normalized);
    }

    #[test]
    fn idle_fraction_helps_zero_refresh() {
        let exp = ExperimentConfig::tiny_test();
        let flat = capacity_sweep(Benchmark::Mcf, &[4 << 30], 0.0, &exp).unwrap();
        let idle = capacity_sweep(Benchmark::Mcf, &[4 << 30], 0.30, &exp).unwrap();
        assert!(idle[0].zero_normalized < flat[0].zero_normalized);
    }
}
