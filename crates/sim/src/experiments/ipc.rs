//! IPC experiment (Fig. 17): normalized IPC per benchmark, from the
//! measured refresh reduction fed through the analytic timing model.

use zr_types::Result;
use zr_workloads::Benchmark;

use super::refresh;
use super::ExperimentConfig;
use crate::timing::IpcModel;

/// The estimated IPC gain of one benchmark.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct IpcMeasurement {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Normalized refresh operations the gain derives from.
    pub normalized_refreshes: f64,
    /// IPC normalized to the conventional baseline (> 1.0 is a speedup)
    /// — the Fig. 17 y-axis.
    pub normalized_ipc: f64,
}

/// Measures one benchmark's normalized IPC at 100% allocation.
///
/// # Errors
///
/// Returns configuration/address errors from the underlying layers.
pub fn measure(benchmark: Benchmark, exp: &ExperimentConfig) -> Result<IpcMeasurement> {
    let m = refresh::measure(benchmark, 1.0, exp)?;
    let model = IpcModel::paper_default();
    Ok(IpcMeasurement {
        benchmark: benchmark.name(),
        normalized_refreshes: m.normalized,
        normalized_ipc: model.normalized_ipc(&benchmark.profile(), m.normalized),
    })
}

/// The full Fig. 17 sweep across the suite, one pool job per benchmark
/// (see [`super::parallel`]; ordering is thread-count invariant).
///
/// # Errors
///
/// Returns configuration/address errors from the underlying layers.
pub fn suite_sweep(exp: &ExperimentConfig) -> Result<Vec<IpcMeasurement>> {
    let benches = Benchmark::all();
    super::parallel::sweep_with(exp.effective_threads(), benches.len(), |i| {
        measure(benches[i], exp)
    })
}

/// Mean normalized IPC of a sweep.
pub fn mean_ipc(measurements: &[IpcMeasurement]) -> f64 {
    if measurements.is_empty() {
        return 1.0;
    }
    measurements.iter().map(|m| m.normalized_ipc).sum::<f64>() / measurements.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_gains_are_positive_and_bounded() {
        let exp = ExperimentConfig::tiny_test();
        let m = measure(Benchmark::Mcf, &exp).unwrap();
        assert!(m.normalized_ipc >= 1.0);
        assert!(m.normalized_ipc < 1.2, "gain {}", m.normalized_ipc);
    }

    #[test]
    fn memory_bound_friendly_workload_gains_more() {
        let exp = ExperimentConfig::tiny_test();
        let gems = measure(Benchmark::GemsFdtd, &exp).unwrap();
        let gobmk = measure(Benchmark::Gobmk, &exp).unwrap();
        assert!(
            gems.normalized_ipc > gobmk.normalized_ipc,
            "gems {} vs gobmk {}",
            gems.normalized_ipc,
            gobmk.normalized_ipc
        );
    }
}
