//! Data-center scenario analysis (Table I, Fig. 5, and the scenario
//! averages quoted in the abstract).

use zr_types::Result;
use zr_workloads::{Benchmark, DatacenterTrace};

use super::refresh;
use super::ExperimentConfig;

/// The scenario-level result for one trace.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ScenarioResult {
    /// Trace name.
    pub trace: &'static str,
    /// Mean allocated-memory fraction of the trace (Table I).
    pub mean_allocated: f64,
    /// Suite-mean normalized refresh operations under this scenario.
    pub mean_normalized: f64,
}

/// Evaluates the suite mean under one trace's mean allocation — the
/// headline 46% / 57% / 83% reductions of the abstract.
///
/// # Errors
///
/// Returns configuration/address errors from the underlying layers.
pub fn scenario(trace: &DatacenterTrace, exp: &ExperimentConfig) -> Result<ScenarioResult> {
    let alloc = trace.mean_utilization();
    let mut sum = 0.0;
    for &b in Benchmark::all() {
        sum += refresh::measure(b, alloc, exp)?.normalized;
    }
    Ok(ScenarioResult {
        trace: trace.name(),
        mean_allocated: alloc,
        mean_normalized: sum / Benchmark::all().len() as f64,
    })
}

/// All three scenarios (Alibaba, Google, Bitbrains), Table I order.
///
/// # Errors
///
/// See [`scenario`].
pub fn all_scenarios(exp: &ExperimentConfig) -> Result<Vec<ScenarioResult>> {
    [
        DatacenterTrace::alibaba(),
        DatacenterTrace::google(),
        DatacenterTrace::bitbrains(),
    ]
    .iter()
    .map(|t| scenario(t, exp))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_utilization_means_lower_normalized() {
        // One benchmark is enough for the monotonicity check.
        let exp = ExperimentConfig::tiny_test();
        let hot = refresh::measure(Benchmark::Gcc, 0.88, &exp)
            .unwrap()
            .normalized;
        let cold = refresh::measure(Benchmark::Gcc, 0.28, &exp)
            .unwrap()
            .normalized;
        assert!(cold < hot, "cold {cold} vs hot {hot}");
    }

    #[test]
    fn scenario_composes_alloc_and_content() {
        // normalized ≈ alloc × normalized(100%), since idle memory skips
        // entirely.
        let exp = ExperimentConfig::tiny_test();
        let full = refresh::measure(Benchmark::Gcc, 1.0, &exp)
            .unwrap()
            .normalized;
        let frac = refresh::measure(Benchmark::Gcc, 0.28, &exp)
            .unwrap()
            .normalized;
        assert!(
            (frac - 0.28 * full).abs() < 0.05,
            "frac {frac} vs predicted {}",
            0.28 * full
        );
    }
}
