//! Refresh-reduction experiments: Fig. 14 (allocation scenarios),
//! Fig. 16 (temperature) and Fig. 18 (row size).

use zr_dram::{RefreshPolicy, SweepArena, WindowStats};
use zr_types::geometry::LineAddr;
use zr_types::{Result, TemperatureMode};
use zr_workloads::image::LINES_PER_REGION;
use zr_workloads::trace::TraceGenerator;
use zr_workloads::trace::TraceWrite;
use zr_workloads::Benchmark;

use super::population::build_system;
use super::ExperimentConfig;

/// The measured refresh behaviour of one benchmark/scenario pair.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct RefreshMeasurement {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Allocated memory fraction of the scenario.
    pub alloc_fraction: f64,
    /// Refresh operations normalized to the conventional baseline
    /// (lower is better; the Fig. 14 y-axis).
    pub normalized: f64,
    /// Raw accumulated window statistics over the measured windows.
    pub stats: WindowStats,
}

/// Measures the normalized refresh operations for one benchmark at one
/// allocation fraction, over `exp.windows` retention windows of
/// steady-state write traffic (after one unmeasured scan window).
///
/// # Errors
///
/// Returns configuration/address errors from the underlying layers.
pub fn measure(
    benchmark: Benchmark,
    alloc_fraction: f64,
    exp: &ExperimentConfig,
) -> Result<RefreshMeasurement> {
    measure_with_policy(benchmark, alloc_fraction, RefreshPolicy::ChargeAware, exp)
}

/// [`measure`] with an explicit refresh policy (ablations use the naive
/// tracker or a transformation-disabled system via `exp.system_config()`).
///
/// # Errors
///
/// Returns configuration/address errors from the underlying layers.
pub fn measure_with_policy(
    benchmark: Benchmark,
    alloc_fraction: f64,
    policy: RefreshPolicy,
    exp: &ExperimentConfig,
) -> Result<RefreshMeasurement> {
    let telemetry = zr_telemetry::Telemetry::current();
    // Everything recorded inside this run — refresh-window summaries,
    // skip decisions, transform events — is tagged with the workload.
    let _scope = telemetry.scope(benchmark.name());
    let populate_span = telemetry.span("sim.populate");
    let mut ps = build_system(benchmark, alloc_fraction, policy, exp)?;
    drop(populate_span);
    let profile = benchmark.profile();
    let mut trace = TraceGenerator::new(
        profile,
        ps.region_classes.clone(),
        LINES_PER_REGION,
        benchmark.derive_seed(exp.seed) ^ 0xACCE55,
    );
    // Scan window: populates the discharged-status table (unmeasured, as
    // the paper measures steady state).
    let mut arena = SweepArena::new();
    let mut writes: Vec<TraceWrite> = Vec::new();
    ps.system.run_refresh_window_with(&mut arena);
    let mut stats = WindowStats::default();
    for _ in 0..exp.windows {
        let _window_span = telemetry.span("sim.window");
        trace.window_writes_into(exp.window_scale(), &mut writes);
        for w in &writes {
            let line = LineAddr(w.page * LINES_PER_REGION as u64 + w.line_in_page as u64);
            ps.system.write_line_with(line, &w.data, &mut arena)?;
        }
        stats.accumulate(&ps.system.run_refresh_window_with(&mut arena));
    }
    telemetry.emit(|| zr_telemetry::Event::ExperimentSummary {
        benchmark: benchmark.name(),
        alloc_fraction,
        normalized: stats.normalized_refreshes(),
        windows: exp.windows,
    });
    Ok(RefreshMeasurement {
        benchmark: benchmark.name(),
        alloc_fraction,
        normalized: stats.normalized_refreshes(),
        stats,
    })
}

/// The Fig. 14 sweep: every benchmark × the four allocation scenarios
/// (100%, 88% Alibaba, 70% Google, 28% Bitbrains).
///
/// Cells are measured on the [`super::parallel`] sweep pool at
/// [`ExperimentConfig::effective_threads`]; the returned order (and
/// every byte of downstream reporting) is identical for any width.
///
/// # Errors
///
/// Returns configuration/address errors from the underlying layers.
pub fn allocation_sweep(exp: &ExperimentConfig) -> Result<Vec<RefreshMeasurement>> {
    const ALLOCS: [f64; 4] = [1.0, 0.88, 0.70, 0.28];
    let benches = Benchmark::all();
    super::parallel::sweep_with(exp.effective_threads(), ALLOCS.len() * benches.len(), |i| {
        measure(benches[i % benches.len()], ALLOCS[i / benches.len()], exp)
    })
}

/// The Fig. 16 comparison: normalized refreshes at extended (32 ms) vs
/// normal (64 ms) temperature, 100% allocated.
///
/// # Errors
///
/// Returns configuration/address errors from the underlying layers.
pub fn temperature_compare(
    benchmark: Benchmark,
    exp: &ExperimentConfig,
) -> Result<(RefreshMeasurement, RefreshMeasurement)> {
    let extended = measure(
        benchmark,
        1.0,
        &ExperimentConfig {
            temperature: TemperatureMode::Extended,
            ..exp.clone()
        },
    )?;
    let normal = measure(
        benchmark,
        1.0,
        &ExperimentConfig {
            temperature: TemperatureMode::Normal,
            ..exp.clone()
        },
    )?;
    Ok((extended, normal))
}

/// The Fig. 18 sweep: normalized refreshes with 2 KB / 4 KB / 8 KB rows,
/// 100% allocated.
///
/// # Errors
///
/// Returns configuration/address errors from the underlying layers.
pub fn row_size_sweep(
    benchmark: Benchmark,
    exp: &ExperimentConfig,
) -> Result<Vec<(usize, RefreshMeasurement)>> {
    [2048usize, 4096, 8192]
        .iter()
        .map(|&row_bytes| {
            let m = measure(
                benchmark,
                1.0,
                &ExperimentConfig {
                    row_bytes,
                    ..exp.clone()
                },
            )?;
            Ok((row_bytes, m))
        })
        .collect()
}

/// Mean normalized refreshes over a set of measurements.
pub fn mean_normalized(measurements: &[RefreshMeasurement]) -> f64 {
    if measurements.is_empty() {
        return 1.0;
    }
    measurements.iter().map(|m| m.normalized).sum::<f64>() / measurements.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_idle_memory_skips_everything() {
        let exp = ExperimentConfig::tiny_test();
        let m = measure(Benchmark::Gcc, 0.0, &exp).unwrap();
        assert!(m.normalized < 0.01, "normalized {}", m.normalized);
    }

    #[test]
    fn reduction_grows_with_idle_fraction() {
        let exp = ExperimentConfig::tiny_test();
        let full = measure(Benchmark::Gcc, 1.0, &exp).unwrap();
        let half = measure(Benchmark::Gcc, 0.5, &exp).unwrap();
        assert!(
            half.normalized < full.normalized,
            "half {} vs full {}",
            half.normalized,
            full.normalized
        );
    }

    #[test]
    fn friendly_beats_hostile_content() {
        let exp = ExperimentConfig::tiny_test();
        let gems = measure(Benchmark::GemsFdtd, 1.0, &exp).unwrap();
        let sp = measure(Benchmark::SpC, 1.0, &exp).unwrap();
        assert!(
            gems.normalized + 0.2 < sp.normalized,
            "gems {} vs sp.C {}",
            gems.normalized,
            sp.normalized
        );
    }

    #[test]
    fn conventional_policy_never_skips() {
        let exp = ExperimentConfig::tiny_test();
        let m =
            measure_with_policy(Benchmark::Gcc, 0.5, RefreshPolicy::Conventional, &exp).unwrap();
        assert_eq!(m.normalized, 1.0);
    }

    #[test]
    fn row_size_ordering() {
        let exp = ExperimentConfig::tiny_test();
        let sweep = row_size_sweep(Benchmark::Gcc, &exp).unwrap();
        assert_eq!(sweep.len(), 3);
        // Smaller rows harvest more short friendly runs (Fig. 18).
        assert!(
            sweep[0].1.normalized < sweep[2].1.normalized,
            "2K {} vs 8K {}",
            sweep[0].1.normalized,
            sweep[2].1.normalized
        );
    }

    #[test]
    fn normal_temperature_loses_a_little() {
        let exp = ExperimentConfig::tiny_test();
        let (ext, norm) = temperature_compare(Benchmark::Lbm, &exp).unwrap();
        // Twice the writes per (64 ms) window can only hurt.
        assert!(
            norm.normalized >= ext.normalized - 1e-9,
            "normal {} vs extended {}",
            norm.normalized,
            ext.normalized
        );
    }
}
