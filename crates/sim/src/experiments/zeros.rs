//! Zero-value statistics (Fig. 6): the fraction of zeros at 1 KB and
//! 1-byte granularity in touched memory, per benchmark.
//!
//! This is a pure content analysis over the benchmark image — no DRAM is
//! involved — matching the paper's memory-dump methodology ("only from
//! the memory pages accessed at least once").

use rand::rngs::StdRng;
use rand::SeedableRng;

use zr_types::Result;
use zr_workloads::content::{zero_block_fraction, zero_byte_fraction};
use zr_workloads::image::{region_classes, region_lines};
use zr_workloads::Benchmark;

use super::ExperimentConfig;

/// Zero statistics of one benchmark image.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ZeroMeasurement {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Fraction of fully-zero 1 KB blocks.
    pub kb_block_fraction: f64,
    /// Fraction of zero bytes.
    pub byte_fraction: f64,
}

/// Measures the Fig. 6 statistics for one benchmark over a sampled image.
///
/// # Errors
///
/// Currently infallible for valid benchmarks; returns a [`zr_types::Error`]
/// for forward compatibility with image-backed sources.
pub fn measure(benchmark: Benchmark, exp: &ExperimentConfig) -> Result<ZeroMeasurement> {
    let profile = benchmark.profile();
    // Sample a fixed 32 MB of touched content; rare classes (zero pages
    // at ~2%) need a decent sample to converge.
    let n_regions = 16 * 1024;
    let seed = benchmark.derive_seed(exp.seed);
    let classes = region_classes(&profile, n_regions, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x2E05);
    let mut image = Vec::with_capacity(n_regions as usize * 2048);
    for class in classes {
        for line in region_lines(class, &mut rng) {
            image.extend_from_slice(&line);
        }
    }
    Ok(ZeroMeasurement {
        benchmark: benchmark.name(),
        kb_block_fraction: zero_block_fraction(&image, 1024),
        byte_fraction: zero_byte_fraction(&image),
    })
}

/// The full Fig. 6 sweep across the suite.
///
/// # Errors
///
/// See [`measure`].
pub fn suite_sweep(exp: &ExperimentConfig) -> Result<Vec<ZeroMeasurement>> {
    Benchmark::all().iter().map(|&b| measure(b, exp)).collect()
}

/// Suite means `(kb_block_fraction, byte_fraction)`.
pub fn means(measurements: &[ZeroMeasurement]) -> (f64, f64) {
    if measurements.is_empty() {
        return (0.0, 0.0);
    }
    let n = measurements.len() as f64;
    (
        measurements
            .iter()
            .map(|m| m.kb_block_fraction)
            .sum::<f64>()
            / n,
        measurements.iter().map(|m| m.byte_fraction).sum::<f64>() / n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_zeros_dwarf_block_zeros() {
        // The Fig. 6 asymmetry: plenty of zero bytes (≈43% mean), almost
        // no fully-zero 1 KB blocks (≈2.3% mean).
        let exp = ExperimentConfig::tiny_test();
        let m = measure(Benchmark::Gcc, &exp).unwrap();
        assert!(m.byte_fraction > 5.0 * m.kb_block_fraction);
    }

    #[test]
    fn suite_means_match_fig6_shape() {
        let exp = ExperimentConfig::tiny_test();
        let sweep = suite_sweep(&exp).unwrap();
        let (kb, byte) = means(&sweep);
        assert!((0.01..0.06).contains(&kb), "1KB-zero mean {kb}");
        assert!((0.30..0.55).contains(&byte), "byte-zero mean {byte}");
    }

    #[test]
    fn deterministic() {
        let exp = ExperimentConfig::tiny_test();
        assert_eq!(
            measure(Benchmark::Milc, &exp).unwrap(),
            measure(Benchmark::Milc, &exp).unwrap()
        );
    }
}
