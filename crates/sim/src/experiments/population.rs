//! Populating a memory system with a benchmark image.

use rand::rngs::StdRng;
use rand::SeedableRng;

use zero_refresh::ZeroRefreshSystem;
use zr_dram::{RefreshPolicy, SweepArena};
use zr_types::geometry::LineAddr;
use zr_types::Result;
use zr_workloads::content::LineClass;
use zr_workloads::image::{region_classes, LINES_PER_REGION, REGION_BYTES};
use zr_workloads::Benchmark;

use super::ExperimentConfig;

/// A memory system populated with a benchmark image.
#[derive(Debug)]
pub struct PopulatedSystem {
    /// The system holding the image.
    pub system: ZeroRefreshSystem,
    /// Content class of each allocated 2 KB region, in address order.
    pub region_classes: Vec<LineClass>,
    /// Total regions the capacity holds (allocated + idle).
    pub total_regions: u64,
}

impl PopulatedSystem {
    /// Allocated fraction of the memory.
    pub fn allocated_fraction(&self) -> f64 {
        self.region_classes.len() as f64 / self.total_regions as f64
    }
}

/// Builds a system and fills `alloc_fraction` of it with the benchmark's
/// content image; the rest stays OS-cleansed (all zeros, discharged).
///
/// Zero-class regions are not physically written: an all-zero write
/// through the transformation stores exactly the cleansed pattern the
/// rank already holds, so skipping the writes is behaviour-preserving
/// (verified by a test below) and keeps population fast.
///
/// # Errors
///
/// Returns configuration/address errors from the underlying layers.
pub fn build_system(
    benchmark: Benchmark,
    alloc_fraction: f64,
    policy: RefreshPolicy,
    exp: &ExperimentConfig,
) -> Result<PopulatedSystem> {
    build_system_with(benchmark, alloc_fraction, policy, exp, |_| {})
}

/// [`build_system`] with a configuration hook applied before the system is
/// built (used by ablations that tweak knobs `ExperimentConfig` does not
/// expose, e.g. the EBDI word size).
///
/// # Errors
///
/// Returns configuration/address errors from the underlying layers.
pub fn build_system_with(
    benchmark: Benchmark,
    alloc_fraction: f64,
    policy: RefreshPolicy,
    exp: &ExperimentConfig,
    tweak: impl FnOnce(&mut zr_types::SystemConfig),
) -> Result<PopulatedSystem> {
    let mut cfg = exp.system_config();
    tweak(&mut cfg);
    let mut system = ZeroRefreshSystem::with_policy(&cfg, policy)?;
    let total_regions = exp.capacity_bytes / REGION_BYTES as u64;
    let allocated = (alloc_fraction.clamp(0.0, 1.0) * total_regions as f64).round() as u64;
    let profile = benchmark.profile();
    let classes = region_classes(&profile, allocated, benchmark.derive_seed(exp.seed));
    let mut rng = StdRng::seed_from_u64(benchmark.derive_seed(exp.seed) ^ 0xC0FFEE);
    let mut arena = SweepArena::new();
    for (r, &class) in classes.iter().enumerate() {
        if matches!(class, LineClass::Zero) {
            continue; // cleansed rank already holds the zero image
        }
        let base = r as u64 * LINES_PER_REGION as u64;
        for i in 0..LINES_PER_REGION {
            let line = class.generate_line(&mut rng);
            system.write_line_with(LineAddr(base + i as u64), &line, &mut arena)?;
        }
    }
    Ok(PopulatedSystem {
        system,
        region_classes: classes,
        total_regions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_respects_alloc_fraction() {
        let exp = ExperimentConfig::tiny_test();
        let ps = build_system(Benchmark::Gcc, 0.5, RefreshPolicy::ChargeAware, &exp).unwrap();
        assert!((ps.allocated_fraction() - 0.5).abs() < 0.01);
        assert_eq!(ps.total_regions, (4 << 20) / 2048);
    }

    #[test]
    fn zero_region_skip_is_behaviour_preserving() {
        // Explicitly writing zeros must leave the rank in the same state
        // as not writing at all (the fast path).
        let exp = ExperimentConfig::tiny_test();
        let mut ps = build_system(Benchmark::Gcc, 0.3, RefreshPolicy::ChargeAware, &exp).unwrap();
        // Pick an address inside an (unwritten) zero region if any exist,
        // otherwise use unallocated space — both must read zero.
        let zero_region = ps
            .region_classes
            .iter()
            .position(|c| matches!(c, LineClass::Zero))
            .unwrap_or(ps.region_classes.len());
        let addr = LineAddr(zero_region as u64 * LINES_PER_REGION as u64);
        assert!(ps.system.read_line(addr).unwrap().iter().all(|&b| b == 0));
        // And writing zeros there changes nothing about discharge.
        ps.system.run_refresh_window();
        let before = ps.system.run_refresh_window().rows_skipped;
        ps.system
            .zero_fill_lines(addr, LINES_PER_REGION as u64)
            .unwrap();
        ps.system.run_refresh_window();
        let after = ps.system.run_refresh_window().rows_skipped;
        assert_eq!(before, after);
    }

    #[test]
    fn image_reads_back_consistently() {
        let exp = ExperimentConfig::tiny_test();
        let mut ps = build_system(Benchmark::Mcf, 1.0, RefreshPolicy::ChargeAware, &exp).unwrap();
        // Reads across several refresh windows return stable content.
        let probe: Vec<u64> = (0..20).map(|i| i * 977).collect();
        let snapshot: Vec<Vec<u8>> = probe
            .iter()
            .map(|&a| ps.system.read_line(LineAddr(a)).unwrap())
            .collect();
        for _ in 0..2 {
            ps.system.run_refresh_window();
        }
        for (a, snap) in probe.iter().zip(&snapshot) {
            assert_eq!(&ps.system.read_line(LineAddr(*a)).unwrap(), snap);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let exp = ExperimentConfig::tiny_test();
        let mut a = build_system(Benchmark::Astar, 0.4, RefreshPolicy::ChargeAware, &exp).unwrap();
        let mut b = build_system(Benchmark::Astar, 0.4, RefreshPolicy::ChargeAware, &exp).unwrap();
        assert_eq!(a.region_classes, b.region_classes);
        for addr in [0u64, 100, 999] {
            assert_eq!(
                a.system.read_line(LineAddr(addr)).unwrap(),
                b.system.read_line(LineAddr(addr)).unwrap()
            );
        }
    }
}
