//! Experiment drivers, one module per evaluation axis.

pub mod datacenter;
pub mod energy;
pub mod ipc;
pub mod ipc_sim;
pub mod parallel;
pub mod population;
pub mod priorwork;
pub mod refresh;
pub mod scalability;
pub mod zeros;

/// Shared knobs for the experiment drivers.
///
/// The paper simulates a 32 GB memory; the mechanism is value-based, so
/// *normalized* results are capacity-invariant (demonstrated by
/// [`scalability`]) and the default scales the memory down for wall-clock
/// reasons. The window count matches the paper's "more than 256 ms to
/// achieve 8 refresh operations".
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Simulated memory capacity in bytes.
    pub capacity_bytes: u64,
    /// Rank-row (row buffer) size in bytes.
    pub row_bytes: usize,
    /// Measured retention windows (after one unmeasured scan window).
    pub windows: u64,
    /// Temperature mode (retention time).
    pub temperature: zr_types::TemperatureMode,
    /// Seed for all stochastic content/traffic generation.
    pub seed: u64,
    /// Transformation stage toggles (ablations disable stages).
    pub transform: zr_types::TransformConfig,
    /// Sweep-pool width override: `None` defers to `ZR_THREADS` /
    /// available parallelism (see [`zr_par::thread_count`]); `Some(1)`
    /// pins the exact serial path. Results are byte-identical for every
    /// value — this knob trades wall time only.
    pub threads: Option<usize>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            capacity_bytes: 64 << 20,
            row_bytes: 4096,
            windows: 8,
            temperature: zr_types::TemperatureMode::Extended,
            seed: 0x5EED,
            transform: zr_types::TransformConfig::paper_default(),
            threads: None,
        }
    }
}

impl ExperimentConfig {
    /// A deliberately tiny configuration for unit tests.
    pub fn tiny_test() -> Self {
        ExperimentConfig {
            capacity_bytes: 4 << 20,
            windows: 3,
            ..ExperimentConfig::default()
        }
    }

    /// The configuration the conformance golden gates (`zr-conform`)
    /// run the figure experiments at: as small as [`tiny_test`] but with
    /// its own fixed seed, so blessing a golden snapshot does not couple
    /// to the unit-test knobs.
    pub fn conform_test() -> Self {
        ExperimentConfig {
            capacity_bytes: 4 << 20,
            windows: 3,
            seed: 0x00C0_F042,
            ..ExperimentConfig::default()
        }
    }

    /// The sweep-pool width this experiment runs at: the explicit
    /// [`ExperimentConfig::threads`] override when set, otherwise the
    /// process-wide [`zr_par::thread_count`] resolution.
    pub fn effective_threads(&self) -> usize {
        self.threads.unwrap_or_else(zr_par::thread_count).max(1)
    }

    /// A canonical key/value rendering of every field that affects
    /// simulation *results*. The sweep-pool width is deliberately
    /// excluded: results are byte-identical at every thread count, so
    /// two runs differing only in `threads` are the same experiment.
    /// Run manifests fingerprint configurations by hashing this string
    /// (`zr-lens`, see `docs/LENS.md`); the leading `v1` versions the
    /// rendering itself.
    pub fn canonical_string(&self) -> String {
        format!(
            "v1 capacity_bytes={} row_bytes={} windows={} temperature={:?} seed={} \
             ebdi={} bit_plane={} rotation={} cell_aware={}",
            self.capacity_bytes,
            self.row_bytes,
            self.windows,
            self.temperature,
            self.seed,
            self.transform.ebdi,
            self.transform.bit_plane,
            self.transform.rotation,
            self.transform.cell_aware,
        )
    }

    /// Validates the experiment knobs and the [`zr_types::SystemConfig`]
    /// they derive.
    ///
    /// The zero-row-size guard runs *before* [`Self::system_config`] is
    /// built, because deriving the geometry divides by `row_bytes` — on
    /// protocol-reachable paths (zr-serve) a degenerate request must
    /// surface as an error, never a panic.
    ///
    /// # Errors
    ///
    /// [`zr_types::Error::InvalidConfig`] for a zero row size or any
    /// inconsistency [`zr_types::SystemConfig::validate`] reports in the
    /// derived system.
    pub fn validate(&self) -> zr_types::Result<()> {
        if self.row_bytes == 0 {
            return Err(zr_types::Error::invalid_config("row_bytes must be non-zero"));
        }
        self.system_config().validate()
    }

    /// The [`zr_types::SystemConfig`] realizing this experiment setup.
    ///
    /// The true/anti-cell block size scales with the capacity (1/8 of the
    /// rows per bank, capped at the physical 512) so that scaled-down
    /// memories still contain both cell types in the same proportion as
    /// the full-size device — otherwise small simulations would see only
    /// true cells and the cell-type machinery would be dead code.
    pub fn system_config(&self) -> zr_types::SystemConfig {
        let mut cfg = zr_types::SystemConfig::paper_default();
        cfg.dram.capacity_bytes = self.capacity_bytes;
        cfg.dram.row_bytes = self.row_bytes;
        cfg.dram.cell_block_rows = (cfg.dram.rows_per_bank() / 8).clamp(1, 512);
        cfg.timing.temperature = self.temperature;
        cfg.transform = self.transform;
        cfg
    }

    /// Wall-clock scale of one retention window relative to the 32 ms
    /// extended-temperature base: workloads issue twice the writes in a
    /// 64 ms window.
    pub fn window_scale(&self) -> f64 {
        match self.temperature {
            zr_types::TemperatureMode::Extended => 1.0,
            zr_types::TemperatureMode::Normal => 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configs_validate() {
        ExperimentConfig::default().validate().unwrap();
        ExperimentConfig::tiny_test().validate().unwrap();
        ExperimentConfig::conform_test().validate().unwrap();
    }

    #[test]
    fn degenerate_configs_error_instead_of_panicking() {
        // Zero row size would divide-by-zero in rows_per_bank() if it
        // reached system_config(); validate() must catch it first.
        let mut zero_row = ExperimentConfig::tiny_test();
        zero_row.row_bytes = 0;
        assert!(zero_row.validate().is_err());
        let mut odd_row = ExperimentConfig::tiny_test();
        odd_row.row_bytes = 3000;
        assert!(odd_row.validate().is_err());
        let mut ragged = ExperimentConfig::tiny_test();
        ragged.capacity_bytes = 4096 * 8 + 17;
        assert!(ragged.validate().is_err());
        let mut empty = ExperimentConfig::tiny_test();
        empty.capacity_bytes = 0;
        assert!(empty.validate().is_err());
    }
}
