//! Timing/IPC model and experiment drivers reproducing the ZERO-REFRESH
//! evaluation (§VI).
//!
//! This crate is the "evaluation methodology" layer: it populates memory
//! systems with benchmark images from `zr-workloads`, drives refresh
//! windows with write traffic, and packages the results exactly along the
//! axes of the paper's tables and figures:
//!
//! - [`experiments::zeros`] — zero-value statistics (Fig. 6);
//! - [`experiments::refresh`] — normalized refresh operations across
//!   allocation scenarios (Fig. 14), temperatures (Fig. 16) and row sizes
//!   (Fig. 18);
//! - [`experiments::energy`] — normalized refresh energy with all
//!   ZERO-REFRESH overheads (Fig. 15);
//! - [`experiments::ipc`] + [`timing`] — the normalized-IPC estimate
//!   (Fig. 17);
//! - [`experiments::scalability`] — the Smart Refresh capacity comparison
//!   (Fig. 19);
//! - [`experiments::datacenter`] — the trace-driven scenarios (Table I,
//!   Fig. 5).
//!
//! # Examples
//!
//! ```no_run
//! use zr_sim::experiments::{refresh, ExperimentConfig};
//! use zr_workloads::Benchmark;
//!
//! let cfg = ExperimentConfig::default();
//! let result = refresh::measure(Benchmark::GemsFdtd, 1.0, &cfg)?;
//! println!("gemsFDTD normalized refreshes: {:.3}", result.normalized);
//! # Ok::<(), zr_types::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod timing;

pub use experiments::ExperimentConfig;
pub use timing::IpcModel;
