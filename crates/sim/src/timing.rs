//! The IPC estimate behind Fig. 17.
//!
//! The paper measures IPC with a cycle-level simulator (McSimA+/GEMS/
//! DRAMSim2); here we use a first-order analytic model that captures the
//! mechanism the figure isolates: a bank being refreshed cannot serve
//! requests, so reducing refresh occupancy shortens average memory latency
//! in proportion to how memory-bound the workload is.
//!
//! CPI model:
//!
//! ```text
//! CPI = CPI_core + (MPKI / 1000) · (L_mem + occupancy · tRFC/2) / MLP
//! ```
//!
//! where `occupancy` is the fraction of time a bank is busy refreshing
//! (per-bank AR at DDR4-8Gb-like rates gives ~10% at 32 ms retention) and
//! `MLP` the memory-level parallelism of the out-of-order core.
//! ZERO-REFRESH scales occupancy by its normalized refresh count plus the
//! small fixed cost of reading the status table.

use zr_workloads::ContentProfile;

/// Analytic IPC model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IpcModel {
    /// Core-bound CPI of the 4-wide out-of-order core (no memory stalls).
    pub base_cpi: f64,
    /// Uncontended memory latency in CPU cycles (≈70 ns at 4 GHz).
    pub mem_latency_cycles: f64,
    /// Memory-level parallelism: overlapping misses divide the exposed
    /// stall.
    pub mlp: f64,
    /// Fraction of time a bank is busy refreshing under conventional
    /// per-bank auto-refresh (DDR4-8Gb-like: 8192 ARs × ~400 ns / 32 ms).
    pub refresh_occupancy: f64,
    /// Average added wait when a request hits a refreshing bank, in CPU
    /// cycles (≈ tRFC/2 at 4 GHz).
    pub refresh_wait_cycles: f64,
    /// Residual occupancy fraction ZERO-REFRESH pays even for fully
    /// skipped sets (status-table read time).
    pub table_overhead: f64,
}

impl IpcModel {
    /// The calibrated model for the paper's Table II system.
    pub fn paper_default() -> Self {
        IpcModel {
            base_cpi: 0.6,
            mem_latency_cycles: 280.0,
            mlp: 5.0,
            refresh_occupancy: 0.11,
            refresh_wait_cycles: 700.0,
            table_overhead: 0.02,
        }
    }

    /// CPI under a refresh occupancy of `occupancy` for a workload with
    /// `mpki` memory accesses per kilo-instruction.
    pub fn cpi(&self, mpki: f64, occupancy: f64) -> f64 {
        self.base_cpi
            + mpki / 1000.0 * (self.mem_latency_cycles + occupancy * self.refresh_wait_cycles)
                / self.mlp
    }

    /// Normalized IPC of ZERO-REFRESH over the conventional baseline for
    /// a workload profile whose measured normalized refresh count is
    /// `normalized_refreshes` (the Fig. 17 metric; > 1.0 is a speedup).
    ///
    /// # Examples
    ///
    /// ```
    /// use zr_sim::IpcModel;
    /// use zr_workloads::Benchmark;
    ///
    /// let m = IpcModel::paper_default();
    /// // A memory-bound workload that skips most refreshes gains several
    /// // percent of IPC…
    /// let gems = m.normalized_ipc(&Benchmark::GemsFdtd.profile(), 0.35);
    /// assert!(gems > 1.05);
    /// // …a compute-bound one gains almost nothing.
    /// let gobmk = m.normalized_ipc(&Benchmark::Gobmk.profile(), 0.80);
    /// assert!(gobmk < 1.01);
    /// ```
    pub fn normalized_ipc(&self, profile: &ContentProfile, normalized_refreshes: f64) -> f64 {
        let occ_conv = self.refresh_occupancy;
        let occ_zr = self.refresh_occupancy * (normalized_refreshes + self.table_overhead).min(1.0);
        self.cpi(profile.mpki, occ_conv) / self.cpi(profile.mpki, occ_zr)
    }
}

impl Default for IpcModel {
    fn default() -> Self {
        IpcModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zr_workloads::Benchmark;

    #[test]
    fn more_skipping_means_more_ipc() {
        let m = IpcModel::paper_default();
        let p = Benchmark::Mcf.profile();
        let a = m.normalized_ipc(&p, 0.3);
        let b = m.normalized_ipc(&p, 0.6);
        let c = m.normalized_ipc(&p, 1.0);
        assert!(a > b && b > c);
        assert!((c - 1.0).abs() < 0.01, "no skipping ⇒ no gain, got {c}");
    }

    #[test]
    fn memory_bound_gains_more() {
        let m = IpcModel::paper_default();
        let gems = m.normalized_ipc(&Benchmark::GemsFdtd.profile(), 0.35);
        let gobmk = m.normalized_ipc(&Benchmark::Gobmk.profile(), 0.80);
        assert!(gems > gobmk);
    }

    #[test]
    fn gains_are_in_paper_range() {
        // Fig. 17: max 10.8% (gemsFDTD), min 0.3% (gobmk).
        let m = IpcModel::paper_default();
        let gems = m.normalized_ipc(&Benchmark::GemsFdtd.profile(), 0.35);
        assert!(gems > 1.06 && gems < 1.14, "gems {gems}");
        let gobmk = m.normalized_ipc(&Benchmark::Gobmk.profile(), 0.80);
        assert!(gobmk > 1.0 && gobmk < 1.01, "gobmk {gobmk}");
    }

    #[test]
    fn cpi_monotone_in_occupancy_and_mpki() {
        let m = IpcModel::paper_default();
        assert!(m.cpi(10.0, 0.1) > m.cpi(10.0, 0.0));
        assert!(m.cpi(20.0, 0.1) > m.cpi(10.0, 0.1));
        assert_eq!(m.cpi(0.0, 0.5), m.base_cpi);
    }
}
