//! The three observability crates share one per-thread override stack
//! (`zr_par::context::Stack`) behind their `current()` / `push_current()`
//! APIs. This test forks all three layers inside one pooled sweep —
//! exactly what `zr_sim::experiments::parallel::sweep_with` does — and
//! proves the submission-order round-trip: whatever order the workers
//! *ran* in, the absorbed telemetry counters, trace records and xray
//! engines come back in job-index order, identical to a serial run.

use std::sync::Arc;

use zr_telemetry::Telemetry;
use zr_trace::{RecordKind, TraceRecord, TraceRecorder};
use zr_xray::XrayRecorder;

const JOBS: usize = 16;

/// Runs `JOBS` jobs at `threads`, forking all three contexts per job,
/// and returns `(trace payloads in absorb order, xray engine labels in
/// absorb order, total counter)`.
fn run_all_layers(threads: usize) -> (Vec<u64>, Vec<String>, u64) {
    let parent_telemetry = Arc::new(Telemetry::new());
    let parent_trace = Arc::new(TraceRecorder::memory());
    let parent_xray = Arc::new(XrayRecorder::memory());

    let _tel = Telemetry::push_current(Arc::clone(&parent_telemetry));
    let _trace = TraceRecorder::push_current(Arc::clone(&parent_trace));
    let _xray = XrayRecorder::push_current(Arc::clone(&parent_xray));

    let outcomes = zr_par::run_jobs(threads, JOBS, |i| {
        let job_telemetry = parent_telemetry.fork_job();
        let job_trace = Arc::new(TraceRecorder::memory());
        let job_xray = Arc::new(parent_xray.fork_job());
        let _tg = Telemetry::push_current(Arc::clone(&job_telemetry));
        let _rg = TraceRecorder::push_current(Arc::clone(&job_trace));
        let _xg = XrayRecorder::push_current(Arc::clone(&job_xray));

        // Every layer must resolve `current()` to this job's fork, on
        // whatever worker thread the pool scheduled it on.
        assert!(Arc::ptr_eq(&Telemetry::current(), &job_telemetry));
        assert!(Arc::ptr_eq(&TraceRecorder::current(), &job_trace));
        assert!(Arc::ptr_eq(&XrayRecorder::current(), &job_xray));

        // Stagger completion order so pooled runs absorb out of
        // finish order; indices must still come back sorted.
        if i % 3 == 0 {
            std::thread::yield_now();
        }

        Telemetry::current().counter("ctx.jobs").add(1);
        let mut rec = TraceRecord::new(RecordKind::Transform, 0);
        rec.a = i as u64;
        TraceRecorder::current().record(rec);
        let xray = XrayRecorder::current();
        let engine = xray.announce_engine(&format!("job{i}"), "charge_aware", 1, 1);
        xray.record_ar(engine, 0, 0, 0, 1, i as u64, 0);

        (job_telemetry, job_trace, job_xray)
    });

    for (job_telemetry, job_trace, job_xray) in outcomes {
        parent_telemetry.absorb_job(&job_telemetry);
        parent_trace.absorb_bytes(&job_trace.take_bytes());
        parent_xray.absorb(&job_xray);
    }

    let trace_payloads: Vec<u64> = zr_trace::parse_trace(&parent_trace.take_bytes())
        .expect("parse absorbed trace")
        .iter()
        .filter(|r| r.kind == RecordKind::Transform)
        .map(|r| r.a)
        .collect();
    let snapshot = parent_xray.snapshot();
    let labels: Vec<String> = snapshot.engines.iter().map(|e| e.label.clone()).collect();
    let counter = parent_telemetry.snapshot().counter("ctx.jobs");
    (trace_payloads, labels, counter)
}

#[test]
fn all_three_contexts_round_trip_in_submission_order() {
    for threads in [1, 2, 4, 8] {
        let (trace_payloads, labels, counter) = run_all_layers(threads);
        assert_eq!(
            trace_payloads,
            (0..JOBS as u64).collect::<Vec<_>>(),
            "trace records out of submission order at threads={threads}"
        );
        assert_eq!(
            labels,
            (0..JOBS).map(|i| format!("job{i}")).collect::<Vec<_>>(),
            "xray engines out of submission order at threads={threads}"
        );
        assert_eq!(counter, JOBS as u64, "threads={threads}");
    }
}

#[test]
fn serial_and_pooled_runs_absorb_identically() {
    let serial = run_all_layers(1);
    let pooled = run_all_layers(4);
    assert_eq!(serial, pooled);
}

#[test]
fn nested_overrides_unwind_to_the_parent() {
    let parent = Arc::new(Telemetry::new());
    let _g = Telemetry::push_current(Arc::clone(&parent));
    {
        let inner = parent.fork_job();
        let _g2 = Telemetry::push_current(Arc::clone(&inner));
        assert!(Arc::ptr_eq(&Telemetry::current(), &inner));
    }
    assert!(Arc::ptr_eq(&Telemetry::current(), &parent));
}
