//! Property: for ANY (thread count, seed, benchmark subset) triple the
//! sweep pool returns measurements identical to the serial path —
//! including the raw `WindowStats`, not just the normalized figures.
//!
//! CI pins `PROPTEST_RNG_SEED` so the sampled triples are reproducible;
//! locally the RNG explores freely and failures shrink as usual.

use proptest::prelude::*;
use zr_sim::experiments::{parallel, refresh, ExperimentConfig};
use zr_workloads::Benchmark;

fn tiny_with_seed(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        capacity_bytes: 4 << 20,
        windows: 2,
        seed,
        ..ExperimentConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 4,
        .. ProptestConfig::default()
    })]

    #[test]
    fn any_thread_count_matches_serial(
        threads in 2usize..=8,
        seed in any::<u64>(),
        picks in proptest::collection::vec(0usize..Benchmark::all().len(), 1..=3),
    ) {
        let benches: Vec<Benchmark> =
            picks.iter().map(|&i| Benchmark::all()[i]).collect();
        let exp = tiny_with_seed(seed);
        let serial = parallel::sweep_with(1, benches.len(), |i| {
            refresh::measure(benches[i], 1.0, &exp)
        })
        .unwrap();
        let pooled = parallel::sweep_with(threads, benches.len(), |i| {
            refresh::measure(benches[i], 1.0, &exp)
        })
        .unwrap();
        // RefreshMeasurement is PartialEq over benchmark, allocation,
        // normalized value and the full WindowStats.
        prop_assert_eq!(serial, pooled);
    }
}
