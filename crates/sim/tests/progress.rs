//! `ZR_PROGRESS` must be purely observational: enabling the live sweep
//! progress reporter cannot change any sweep result, at any thread
//! count.
//!
//! One test in one file: the knob is a process-global environment
//! variable, so concurrently running tests in the same binary could
//! race on it.

use zr_sim::experiments::{parallel, refresh, ExperimentConfig};
use zr_workloads::Benchmark;

const SUBSET: [Benchmark; 3] = [Benchmark::GemsFdtd, Benchmark::Mcf, Benchmark::TpchQ6];

fn sweep(threads: usize) -> Vec<refresh::RefreshMeasurement> {
    let exp = ExperimentConfig {
        capacity_bytes: 4 << 20,
        windows: 2,
        ..ExperimentConfig::default()
    };
    parallel::sweep_with(threads, SUBSET.len(), |i| {
        refresh::measure(SUBSET[i], 1.0, &exp)
    })
    .expect("sweep")
}

#[test]
fn progress_reporting_never_changes_sweep_results() {
    std::env::remove_var(parallel::ENV_PROGRESS);
    assert!(!parallel::progress_enabled());
    let quiet_serial = sweep(1);
    let quiet_pooled = sweep(4);
    assert_eq!(quiet_serial, quiet_pooled, "pool determinism baseline");

    std::env::set_var(parallel::ENV_PROGRESS, "1");
    assert!(parallel::progress_enabled());
    let loud_serial = sweep(1);
    let loud_pooled = sweep(4);
    std::env::remove_var(parallel::ENV_PROGRESS);

    assert_eq!(
        quiet_serial, loud_serial,
        "ZR_PROGRESS=1 changed serial sweep results"
    );
    assert_eq!(
        quiet_pooled, loud_pooled,
        "ZR_PROGRESS=1 changed pooled sweep results"
    );
}
