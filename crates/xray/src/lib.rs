//! Charge-domain observability for the ZERO-REFRESH simulator.
//!
//! The fig14/15/16 reports say *how much* refresh the charge-aware
//! policy saves; this crate answers *where the savings come from*. An
//! opt-in recorder ([`XrayRecorder`], activated by `ZR_XRAY`) is hooked
//! into the refresh engine and the value-transform pipeline and
//! captures:
//!
//! - a **windowed time series** — per (bank, AR set, retention window)
//!   rows refreshed / rows skipped / discharged-row counts, plus each
//!   bank's end-of-window discharged state, in a compact columnar
//!   buffer with bounded memory (window buckets downsample 2× past
//!   `ZR_XRAY_WINDOWS`, default 64, so captures never grow with run
//!   length);
//! - a **transform-stage attribution** — every encoded line charges
//!   each enabled pipeline stage (EBDI, bit-plane transposition,
//!   cell-aware inversion, per-row rotation) with the charged-cell
//!   delta it removed, measured by telescoping
//!   `charged_cell_count` snapshots between stages, so fig16-style
//!   savings decompose into exact per-stage contributions.
//!
//! The capture exports as `xray.json` (schema 1, hand-rolled
//! byte-deterministic printer) plus a CSV of the time series, and the
//! `zr-xray` CLI renders bank×window skip-fraction heatmaps, the
//! per-stage savings table, and diffs of two captures.
//!
//! The determinism contract matches the rest of the observability
//! stack (`docs/TELEMETRY.md`, `docs/PARALLELISM.md`):
//!
//! - **off** (default): every hook is a single relaxed atomic load —
//!   zero allocations in the refresh hot loop (proven by
//!   `crates/prof/tests/xray_alloc_free.rs`) and byte-identical stdout;
//! - **on**: the parallel sweep layer forks a private memory recorder
//!   per job and [`XrayRecorder::absorb`]s them in submission order, so
//!   `xray.json` is byte-identical at any `ZR_THREADS`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod json;
pub mod recorder;
pub mod report;
pub mod snapshot;

pub use recorder::{
    env_enabled, export_dir, CurrentXrayGuard, XrayRecorder, DEFAULT_WINDOW_CAP, ENV_XRAY,
    ENV_XRAY_WINDOWS,
};
pub use snapshot::{
    combo_name, stage_combo, ArRow, BankStateRow, EngineCapture, StageCapture, XraySnapshot,
    COMBO_COUNT, SCHEMA_VERSION, STAGE_COUNT, STAGE_NAMES,
};

use std::path::Path;

/// File name of the JSON capture inside an export directory.
pub const JSON_FILE_NAME: &str = "xray.json";

/// File name of the CSV time series inside an export directory.
pub const CSV_FILE_NAME: &str = "xray.csv";

/// Writes a recorder's capture to `<dir>/xray.json` and `<dir>/xray.csv`,
/// creating the directory if needed.
///
/// # Errors
///
/// Returns the underlying IO error if the directory or either file
/// cannot be written.
pub fn export_capture(recorder: &XrayRecorder, dir: &Path) -> std::io::Result<()> {
    let snap = recorder.snapshot();
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(JSON_FILE_NAME), snap.to_json().to_pretty())?;
    std::fs::write(dir.join(CSV_FILE_NAME), snap.to_csv())?;
    Ok(())
}

/// Reads a capture back from an `xray.json` file.
///
/// # Errors
///
/// Returns a description naming the path on IO, JSON or schema errors.
pub fn load_snapshot(path: &Path) -> Result<XraySnapshot, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = json::Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    XraySnapshot::from_json(&doc).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("zr-xray-export-{}", std::process::id()));
        let recorder = XrayRecorder::memory_with_cap(8);
        let e = recorder.announce_engine("fig14/mcf", "charge_aware", 2, 2);
        recorder.record_ar(e, 0, 1, 0, 12, 4, 4);
        recorder.record_window_state(e, 0, 1, 4);
        recorder.record_encode(
            stage_combo(true, false, true, false),
            256,
            [40, 0, 16, 0],
            200,
        );
        export_capture(&recorder, &dir).unwrap();
        let back = load_snapshot(&dir.join(JSON_FILE_NAME)).unwrap();
        assert_eq!(back, recorder.snapshot());
        let csv = std::fs::read_to_string(dir.join(CSV_FILE_NAME)).unwrap();
        assert!(csv.contains("0,fig14/mcf,charge_aware,0,1,0,12,4,4\n"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_reports_missing_file_with_path() {
        let err = load_snapshot(Path::new("/nonexistent/xray.json")).unwrap_err();
        assert!(err.contains("/nonexistent/xray.json"), "{err}");
    }
}
