//! A deliberately tiny JSON value type with a writer and a
//! recursive-descent parser — the same per-crate idiom as
//! `zr-conform::json` and `zr-prof::json`.
//!
//! `zr-xray` owns its capture format end to end: the recorder in the
//! simulation process writes `xray.json`, and the `zr-xray` CLI reads it
//! back, possibly from a different build. Keeping the (de)serializer in
//! this crate — and keeping the crate dependency-free — means the format
//! cannot drift with the rest of the workspace and the recorder never
//! drags observer machinery into `zr-dram`'s dependency graph.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also used for non-finite numbers on output).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number; always carried as `f64`. The capture's counters
    /// are exact below 2^53, far beyond any simulated workload here.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved so captures are
    /// byte-deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    /// The value as a signed integer, if it is a number.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_f64().map(|n| n as i64)
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline —
    /// the byte-deterministic format `xray.json` uses.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{:?}` is Rust's shortest round-trip f64 form.
                    out.push_str(&format!("{n:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{token}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the full UTF-8 character, not just one byte.
                    // The input is a `&str` and `pos` only ever advances
                    // by whole characters, so the slice is valid here.
                    let c = self.text[self.pos..]
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("empty input"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat("{")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Num(1.0)),
            (
                "windows".into(),
                Json::Arr(vec![Json::Num(0.0), Json::Num(12.0), Json::Num(-3.0)]),
            ),
            ("label".into(), Json::Str("fig14/gcc".into())),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn round_trips_awkward_strings() {
        let doc = Json::Arr(vec![
            Json::Str("quote \" backslash \\ newline \n tab \t".into()),
            Json::Str("unicode: åß∂ƒ 😀".into()),
            Json::Str(String::new()),
        ]);
        assert_eq!(Json::parse(&doc.to_pretty()).unwrap(), doc);
    }

    #[test]
    fn integers_survive_exactly() {
        // Every counter the capture stores is well below 2^53.
        for &n in &[0u64, 1, 4096, 1 << 40, (1 << 53) - 1] {
            let text = Json::Num(n as f64).to_pretty();
            assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(n), "{n}");
        }
        let text = Json::Num(-42.0).to_pretty();
        assert_eq!(Json::parse(&text).unwrap().as_i64(), Some(-42));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1.2.3", "\"unclosed"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        assert!(Json::parse("1 2").is_err());
    }
}
