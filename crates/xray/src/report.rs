//! Deterministic ASCII rendering of a capture: the bank×window
//! skip-fraction heatmap, the per-stage savings table and the two-capture
//! diff behind `zr-xray report` / `zr-xray diff`.

use std::collections::BTreeMap;

use crate::snapshot::{combo_name, EngineCapture, XraySnapshot, STAGE_NAMES};

/// Glyph ramp for skip fractions 0.0 ..= 1.0; `' '` is reserved for
/// windows with no refresh activity at all.
const RAMP: &[u8] = b".:-=+*#%@";

/// Renders the full report: engine summary, one heatmap per selected
/// engine, and the stage-attribution table. `engine` restricts the
/// heatmaps to one engine index; the summary always covers all of them.
pub fn render_report(snap: &XraySnapshot, engine: Option<usize>) -> String {
    let mut out = String::new();
    out.push_str(&render_summary(snap));
    for (i, e) in snap.engines.iter().enumerate() {
        if engine.is_some_and(|want| want != i) {
            continue;
        }
        out.push('\n');
        out.push_str(&render_heatmap(i, e));
    }
    out.push('\n');
    out.push_str(&render_stage_table(snap));
    out
}

/// The engine summary table: totals and overall skip fraction.
pub fn render_summary(snap: &XraySnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "xray capture: {} engine(s), window cap {}\n\n",
        snap.engines.len(),
        snap.window_cap
    ));
    out.push_str("engine  refreshed     skipped      skip%  policy        label\n");
    for (i, e) in snap.engines.iter().enumerate() {
        let (refreshed, skipped) = e.totals();
        out.push_str(&format!(
            "{i:>6}  {refreshed:>9}  {skipped:>10}  {:>8}  {:<12}  {}\n",
            percent(skipped, refreshed + skipped),
            e.policy,
            e.label,
        ));
    }
    out
}

/// One engine's bank×window heatmap of the skip fraction, aggregated
/// over AR sets. Banks are rows, window buckets are columns.
pub fn render_heatmap(index: usize, e: &EngineCapture) -> String {
    let mut out = String::new();
    let (refreshed, skipped) = e.totals();
    out.push_str(&format!(
        "engine {index}: {} [{}] — skip fraction per bank × window (stride {})\n",
        e.label, e.policy, e.window_stride
    ));
    // (bank, window) → (refreshed, skipped) summed over sets.
    let mut cells: BTreeMap<(u32, u64), (u64, u64)> = BTreeMap::new();
    let mut windows: Vec<u64> = Vec::new();
    for r in &e.windows {
        let cell = cells.entry((r.bank, r.window)).or_default();
        cell.0 += r.rows_refreshed;
        cell.1 += r.rows_skipped;
        if windows.last() != Some(&r.window) && !windows.contains(&r.window) {
            windows.push(r.window);
        }
    }
    windows.sort_unstable();
    if windows.is_empty() {
        out.push_str("  (no refresh activity recorded)\n");
        return out;
    }
    // Column header: first window index of each bucket, vertical digits.
    let label_width = windows
        .iter()
        .map(|w| w.to_string().len())
        .max()
        .unwrap_or(1);
    for digit in 0..label_width {
        out.push_str(if digit == label_width - 1 {
            "  window "
        } else {
            "         "
        });
        for w in &windows {
            let text = format!("{w:>label_width$}");
            out.push(text.as_bytes()[digit] as char);
        }
        out.push('\n');
    }
    for bank in 0..e.num_banks {
        out.push_str(&format!("  bank{bank:>3} "));
        for &w in &windows {
            out.push(match cells.get(&(bank, w)) {
                None => ' ',
                Some(&(refreshed, skipped)) => {
                    let total = refreshed + skipped;
                    if total == 0 {
                        ' '
                    } else {
                        let level = (skipped as f64 / total as f64 * (RAMP.len() - 1) as f64)
                            .round() as usize;
                        RAMP[level.min(RAMP.len() - 1)] as char
                    }
                }
            });
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "  scale: `{}` = 0% skipped … `{}` = 100%; overall {} of {} chip rows skipped ({})\n",
        RAMP[0] as char,
        RAMP[RAMP.len() - 1] as char,
        skipped,
        refreshed + skipped,
        percent(skipped, refreshed + skipped),
    ));
    out
}

/// The per-stage savings table: one row per observed stage combination,
/// with the telescoping-sum check and a totals row.
pub fn render_stage_table(snap: &XraySnapshot) -> String {
    let mut out = String::new();
    out.push_str("transform-stage charged-cell attribution\n\n");
    if snap.stages.is_empty() {
        out.push_str("  (no encoded lines recorded)\n");
        return out;
    }
    out.push_str(&format!(
        "{:<33} {:>9} {:>12} {:>10} {:>10} {:>10} {:>10} {:>12}  check\n",
        "stages",
        "lines",
        "charged",
        STAGE_NAMES[0],
        STAGE_NAMES[1],
        STAGE_NAMES[2],
        STAGE_NAMES[3],
        "saved",
    ));
    let mut total_before = 0u64;
    let mut total_after = 0u64;
    let mut total_deltas = [0i64; STAGE_NAMES.len()];
    let mut all_exact = true;
    for s in &snap.stages {
        let exact = s.deltas_sum_to_total();
        all_exact &= exact;
        total_before += s.charged_before;
        total_after += s.charged_after;
        for (total, delta) in total_deltas.iter_mut().zip(s.deltas) {
            *total += delta;
        }
        out.push_str(&format!(
            "{:<33} {:>9} {:>12} {:>10} {:>10} {:>10} {:>10} {:>12}  {}\n",
            combo_name(s.combo),
            s.lines,
            s.charged_before,
            s.deltas[0],
            s.deltas[1],
            s.deltas[2],
            s.deltas[3],
            s.total_reduction(),
            if exact { "ok" } else { "MISMATCH" },
        ));
    }
    let run_total = total_before as i64 - total_after as i64;
    let sums_exact = total_deltas.iter().sum::<i64>() == run_total;
    out.push_str(&format!(
        "{:<33} {:>9} {:>12} {:>10} {:>10} {:>10} {:>10} {:>12}\n",
        "TOTAL",
        snap.stages.iter().map(|s| s.lines).sum::<u64>(),
        total_before,
        total_deltas[0],
        total_deltas[1],
        total_deltas[2],
        total_deltas[3],
        run_total,
    ));
    out.push_str(&format!(
        "stage deltas sum to the run's total charged-cell reduction: {}\n",
        if all_exact && sums_exact {
            "OK"
        } else {
            "MISMATCH"
        },
    ));
    out
}

/// Whether every stage row of `snap` telescopes exactly (what the
/// report's final `check` line asserts).
pub fn attribution_exact(snap: &XraySnapshot) -> bool {
    snap.stages.iter().all(|s| s.deltas_sum_to_total())
}

/// Renders the difference between two captures: engine totals and stage
/// aggregates. Identical captures produce the single line
/// `captures are identical`.
pub fn render_diff(a: &XraySnapshot, b: &XraySnapshot) -> String {
    if a == b {
        return "captures are identical\n".to_string();
    }
    let mut out = String::new();
    if a.engines.len() != b.engines.len() {
        out.push_str(&format!(
            "engine count: {} -> {}\n",
            a.engines.len(),
            b.engines.len()
        ));
    }
    for (i, (ea, eb)) in a.engines.iter().zip(&b.engines).enumerate() {
        if ea.label != eb.label {
            out.push_str(&format!(
                "engine {i}: label {:?} -> {:?}\n",
                ea.label, eb.label
            ));
        }
        let (ra, sa) = ea.totals();
        let (rb, sb) = eb.totals();
        if (ra, sa) != (rb, sb) {
            out.push_str(&format!(
                "engine {i} ({}): refreshed {ra} -> {rb} ({:+}), skipped {sa} -> {sb} ({:+})\n",
                ea.label,
                rb as i64 - ra as i64,
                sb as i64 - sa as i64,
            ));
        } else if ea != eb {
            out.push_str(&format!(
                "engine {i} ({}): same totals, different window distribution\n",
                ea.label
            ));
        }
    }
    let stages = |snap: &XraySnapshot| -> BTreeMap<u8, (u64, i64)> {
        snap.stages
            .iter()
            .map(|s| (s.combo, (s.lines, s.total_reduction())))
            .collect()
    };
    let sa = stages(a);
    let sb = stages(b);
    let combos: std::collections::BTreeSet<u8> = sa.keys().chain(sb.keys()).copied().collect();
    for combo in combos {
        let (la, ra) = sa.get(&combo).copied().unwrap_or((0, 0));
        let (lb, rb) = sb.get(&combo).copied().unwrap_or((0, 0));
        if (la, ra) != (lb, rb) {
            out.push_str(&format!(
                "stages {}: lines {la} -> {lb} ({:+}), saved {ra} -> {rb} ({:+})\n",
                combo_name(combo),
                lb as i64 - la as i64,
                rb - ra,
            ));
        }
    }
    if out.is_empty() {
        // Structurally different in a way the totals hide (e.g. window
        // caps); still not byte-identical.
        out.push_str("captures differ (same totals; compare the files directly)\n");
    }
    out
}

fn percent(part: u64, whole: u64) -> String {
    if whole == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", part as f64 / whole as f64 * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{ArRow, StageCapture};

    fn sample() -> XraySnapshot {
        let mut engine = EngineCapture {
            label: "fig14/mcf".into(),
            policy: "charge_aware".into(),
            num_banks: 2,
            ar_sets_per_bank: 1,
            window_stride: 1,
            windows: vec![],
            bank_discharged: vec![],
        };
        for window in 0..3 {
            for bank in 0..2 {
                engine.windows.push(ArRow {
                    window,
                    bank,
                    set: 0,
                    rows_refreshed: 8 - window - bank as u64,
                    rows_skipped: window + bank as u64,
                    discharged: window + bank as u64,
                });
            }
        }
        XraySnapshot {
            window_cap: 64,
            engines: vec![engine],
            stages: vec![StageCapture {
                combo: 5,
                lines: 4,
                charged_before: 1000,
                charged_after: 600,
                deltas: [320, 0, 80, 0],
            }],
        }
    }

    #[test]
    fn report_renders_heatmap_and_table() {
        let snap = sample();
        let text = render_report(&snap, None);
        assert!(text.contains("bank  0"), "{text}");
        assert!(text.contains("bank  1"), "{text}");
        assert!(text.contains("window 012"), "{text}");
        assert!(text.contains("ebdi+inversion"), "{text}");
        assert!(text.contains("stage deltas sum to the run's total charged-cell reduction: OK"));
        assert!(attribution_exact(&snap));
        // Same input, same bytes.
        assert_eq!(text, render_report(&snap, None));
    }

    #[test]
    fn report_flags_inexact_attribution() {
        let mut snap = sample();
        snap.stages[0].deltas[0] += 1;
        let text = render_report(&snap, None);
        assert!(text.contains("MISMATCH"), "{text}");
        assert!(!attribution_exact(&snap));
    }

    #[test]
    fn engine_filter_drops_other_heatmaps() {
        let mut snap = sample();
        let mut second = snap.engines[0].clone();
        second.label = "fig14/gcc".into();
        snap.engines.push(second);
        let text = render_report(&snap, Some(1));
        assert!(!text.contains("engine 0: fig14/mcf ["), "{text}");
        assert!(text.contains("engine 1: fig14/gcc ["), "{text}");
    }

    #[test]
    fn heatmap_uses_full_ramp() {
        let engine = EngineCapture {
            label: "ramp".into(),
            policy: "charge_aware".into(),
            num_banks: 1,
            ar_sets_per_bank: 1,
            window_stride: 1,
            windows: vec![
                ArRow {
                    window: 0,
                    bank: 0,
                    set: 0,
                    rows_refreshed: 10,
                    rows_skipped: 0,
                    discharged: 0,
                },
                ArRow {
                    window: 1,
                    bank: 0,
                    set: 0,
                    rows_refreshed: 0,
                    rows_skipped: 10,
                    discharged: 10,
                },
            ],
            bank_discharged: vec![],
        };
        let text = render_heatmap(0, &engine);
        assert!(text.contains("  bank  0 .@\n"), "{text}");
    }

    #[test]
    fn diff_is_identical_only_for_equal_captures() {
        let snap = sample();
        assert_eq!(render_diff(&snap, &snap), "captures are identical\n");
        let mut other = sample();
        other.engines[0].windows[0].rows_skipped += 2;
        other.stages[0].lines += 1;
        let text = render_diff(&snap, &other);
        assert!(text.contains("engine 0 (fig14/mcf)"), "{text}");
        assert!(
            text.contains("stages ebdi+inversion: lines 4 -> 5"),
            "{text}"
        );
    }
}
