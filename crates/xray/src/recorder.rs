//! The charge-domain recorder: windowed per-(bank, AR-set) refresh
//! attribution plus per-stage transform savings, captured behind one
//! relaxed atomic load when off.
//!
//! [`XrayRecorder`] mirrors the activation pattern of `zr-telemetry` and
//! `zr-trace`: a process-wide [`XrayRecorder::global`] instance
//! initialized from `ZR_XRAY`, a thread-local
//! [`XrayRecorder::push_current`] override stack so the parallel sweep
//! layer can give each pool worker a private memory recorder, and
//! [`XrayRecorder::absorb`] to splice worker captures into the parent in
//! submission order — which is what makes `xray.json` byte-identical at
//! any `ZR_THREADS`.
//!
//! Memory is bounded: each engine keeps at most [`Inner::window_cap`]
//! distinct window buckets (default [`DEFAULT_WINDOW_CAP`], override
//! with `ZR_XRAY_WINDOWS`). When a run outgrows the cap the engine's
//! window stride doubles and existing buckets merge pairwise — counts
//! add, end-of-window bank state keeps the later window's value — so a
//! million-window soak costs the same memory as a short run and the
//! downsampling is a pure function of the window indexes seen, not of
//! scheduling.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::snapshot::{
    ArRow, BankStateRow, EngineCapture, StageCapture, XraySnapshot, STAGE_COUNT,
};

thread_local! {
    /// Per-thread stack of [`XrayRecorder::push_current`] overrides.
    static CURRENT: zr_par::context::Slot<XrayRecorder> = const { RefCell::new(Vec::new()) };
}

/// The shared innermost-wins resolution over [`CURRENT`] (see
/// [`zr_par::context`] — the same mechanism backs `zr-telemetry` and
/// `zr-trace`).
static CURRENT_STACK: zr_par::context::Stack<XrayRecorder> = zr_par::context::Stack::new(&CURRENT);

/// Environment variable activating the global recorder. `1` enables the
/// capture (exported next to the other telemetry artifacts); any other
/// non-empty value except `0` both enables it and names the export
/// directory.
pub const ENV_XRAY: &str = "ZR_XRAY";

/// Environment variable overriding the per-engine window-bucket cap.
pub const ENV_XRAY_WINDOWS: &str = "ZR_XRAY_WINDOWS";

/// Default cap on distinct window buckets kept per engine.
pub const DEFAULT_WINDOW_CAP: u64 = 64;

/// Per-(window-bucket, bank, AR-set) refresh attribution counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ArAgg {
    rows_refreshed: u64,
    rows_skipped: u64,
    discharged: u64,
}

/// Per-combo transform-stage attribution (see [`crate::stage_combo`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct StageAgg {
    lines: u64,
    charged_before: u64,
    charged_after: u64,
    deltas: [i64; STAGE_COUNT],
}

/// One announced refresh engine: identity plus its windowed series.
#[derive(Debug)]
struct EngineState {
    label: String,
    policy: String,
    num_banks: u32,
    ar_sets_per_bank: u64,
    /// Windows per bucket; doubles whenever the run outgrows the cap.
    stride: u64,
    /// (bucket, bank, set) → AR attribution counters.
    ar: BTreeMap<(u64, u32, u64), ArAgg>,
    /// (bucket, bank) → discharged chip rows at end of window; within a
    /// merged bucket the latest window wins (it is the end-of-bucket
    /// state, not a sum).
    bank_state: BTreeMap<(u64, u32), u64>,
}

impl EngineState {
    /// Grows the stride until `window` fits under `cap` buckets, merging
    /// existing buckets pairwise, then returns `window`'s bucket.
    fn bucket_for(&mut self, cap: u64, window: u64) -> u64 {
        while window / self.stride >= cap {
            self.stride *= 2;
            let ar = std::mem::take(&mut self.ar);
            for ((bucket, bank, set), agg) in ar {
                let merged = self.ar.entry((bucket / 2, bank, set)).or_default();
                merged.rows_refreshed += agg.rows_refreshed;
                merged.rows_skipped += agg.rows_skipped;
                merged.discharged += agg.discharged;
            }
            let bank_state = std::mem::take(&mut self.bank_state);
            // Ascending iteration: the higher of two merged buckets is
            // inserted last, so the later window's state wins.
            for ((bucket, bank), rows) in bank_state {
                self.bank_state.insert((bucket / 2, bank), rows);
            }
        }
        window / self.stride
    }
}

#[derive(Debug)]
struct Inner {
    window_cap: u64,
    engines: Vec<EngineState>,
    stages: BTreeMap<u8, StageAgg>,
}

/// The charge-domain recorder. See the [module docs](self).
#[derive(Debug)]
pub struct XrayRecorder {
    active: AtomicBool,
    inner: Mutex<Option<Inner>>,
}

impl Default for XrayRecorder {
    fn default() -> Self {
        XrayRecorder::disabled()
    }
}

impl XrayRecorder {
    /// An inactive recorder: every hook is one relaxed atomic load.
    pub fn disabled() -> Self {
        XrayRecorder {
            active: AtomicBool::new(false),
            inner: Mutex::new(None),
        }
    }

    /// An active in-memory recorder with the environment's window cap.
    pub fn memory() -> Self {
        Self::memory_with_cap(window_cap_from_env())
    }

    /// An active in-memory recorder keeping at most `window_cap` window
    /// buckets per engine (clamped to ≥ 1).
    pub fn memory_with_cap(window_cap: u64) -> Self {
        XrayRecorder {
            active: AtomicBool::new(true),
            inner: Mutex::new(Some(Inner {
                window_cap: window_cap.max(1),
                engines: Vec::new(),
                stages: BTreeMap::new(),
            })),
        }
    }

    /// The process-wide recorder. First access initializes it from
    /// `ZR_XRAY`; when unset (or `0`/empty) it is the inert
    /// [`Self::disabled`] instance.
    pub fn global() -> &'static Arc<XrayRecorder> {
        static GLOBAL: OnceLock<Arc<XrayRecorder>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(XrayRecorder::from_env()))
    }

    /// The recorder instrumented components should bind: the innermost
    /// [`XrayRecorder::push_current`] override on this thread, or
    /// [`XrayRecorder::global`] when none is installed.
    pub fn current() -> Arc<XrayRecorder> {
        CURRENT_STACK.current_or(|| Arc::clone(XrayRecorder::global()))
    }

    /// Installs `recorder` as this thread's [`XrayRecorder::current`]
    /// until the returned guard drops. Overrides nest (innermost wins).
    #[must_use = "dropping the guard immediately uninstalls the override"]
    pub fn push_current(recorder: Arc<XrayRecorder>) -> CurrentXrayGuard {
        CurrentXrayGuard {
            _inner: CURRENT_STACK.push(recorder),
        }
    }

    /// Forks a private recorder for one parallel sweep job: active with
    /// this recorder's window cap when this recorder is active (so job
    /// captures bucket identically to a serial run), inert otherwise.
    /// Merge the fork back with [`Self::absorb`] in submission order.
    pub fn fork_job(&self) -> XrayRecorder {
        match self.inner.lock().unwrap().as_ref() {
            Some(inner) => XrayRecorder::memory_with_cap(inner.window_cap),
            None => XrayRecorder::disabled(),
        }
    }

    /// Builds a recorder from the environment (see [`Self::global`]).
    pub fn from_env() -> XrayRecorder {
        if env_enabled() {
            XrayRecorder::memory()
        } else {
            XrayRecorder::disabled()
        }
    }

    /// Whether recording is live. Instrumented code checks this (one
    /// relaxed load) before computing anything capture-specific.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Registers a refresh engine and returns its index for the
    /// `record_*` hooks. Returns 0 when inactive (the hooks are then
    /// no-ops, so the placeholder index is never dereferenced).
    pub fn announce_engine(
        &self,
        label: &str,
        policy: &str,
        num_banks: u32,
        ar_sets_per_bank: u64,
    ) -> u32 {
        if !self.is_active() {
            return 0;
        }
        let mut guard = self.inner.lock().expect("xray lock");
        let Some(inner) = guard.as_mut() else {
            return 0;
        };
        inner.engines.push(EngineState {
            label: label.to_string(),
            policy: policy.to_string(),
            num_banks,
            ar_sets_per_bank,
            stride: 1,
            ar: BTreeMap::new(),
            bank_state: BTreeMap::new(),
        });
        (inner.engines.len() - 1) as u32
    }

    /// Records one per-bank AR command's outcome: rows refreshed and
    /// skipped, plus how many of the set's chip rows held the discharged
    /// pattern. A no-op (single relaxed load) when inactive.
    ///
    /// The argument list mirrors the AR command's full coordinate tuple
    /// on purpose: collapsing it into a struct would make the hot-path
    /// call sites in `zr-dram` build a value even when the recorder is
    /// off.
    #[expect(clippy::too_many_arguments)]
    #[inline]
    pub fn record_ar(
        &self,
        engine: u32,
        window: u64,
        bank: u32,
        set: u64,
        rows_refreshed: u64,
        rows_skipped: u64,
        discharged: u64,
    ) {
        if !self.is_active() {
            return;
        }
        let mut guard = self.inner.lock().expect("xray lock");
        let Some(inner) = guard.as_mut() else {
            return;
        };
        let cap = inner.window_cap;
        let Some(state) = inner.engines.get_mut(engine as usize) else {
            return;
        };
        let bucket = state.bucket_for(cap, window);
        let agg = state.ar.entry((bucket, bank, set)).or_default();
        agg.rows_refreshed += rows_refreshed;
        agg.rows_skipped += rows_skipped;
        agg.discharged += discharged;
    }

    /// Records a bank's end-of-window discharged chip-row count. Within
    /// a downsampled bucket the latest window's value wins. A no-op
    /// (single relaxed load) when inactive.
    #[inline]
    pub fn record_window_state(&self, engine: u32, window: u64, bank: u32, discharged_rows: u64) {
        if !self.is_active() {
            return;
        }
        let mut guard = self.inner.lock().expect("xray lock");
        let Some(inner) = guard.as_mut() else {
            return;
        };
        let cap = inner.window_cap;
        let Some(state) = inner.engines.get_mut(engine as usize) else {
            return;
        };
        let bucket = state.bucket_for(cap, window);
        state.bank_state.insert((bucket, bank), discharged_rows);
    }

    /// Records one encoded line's per-stage charged-cell attribution:
    /// the charged-cell count before any stage, the (signed) reduction
    /// each stage contributed, and the final count. The telescoping
    /// invariant `charged_before - charged_after == deltas.iter().sum()`
    /// holds by construction at the call site and is checked by the
    /// conformance proptests. A no-op (single relaxed load) when
    /// inactive.
    #[inline]
    pub fn record_encode(
        &self,
        combo: u8,
        charged_before: u64,
        deltas: [i64; STAGE_COUNT],
        charged_after: u64,
    ) {
        if !self.is_active() {
            return;
        }
        let mut guard = self.inner.lock().expect("xray lock");
        let Some(inner) = guard.as_mut() else {
            return;
        };
        let agg = inner.stages.entry(combo).or_default();
        agg.lines += 1;
        agg.charged_before += charged_before;
        agg.charged_after += charged_after;
        for (total, delta) in agg.deltas.iter_mut().zip(deltas) {
            *total += delta;
        }
    }

    /// Moves another recorder's capture into this one: its engines are
    /// appended (in its announce order) and its stage aggregates merge
    /// into ours. The other recorder is left inactive and empty. Called
    /// by the sweep layer in job-submission order, which is what keeps
    /// pooled captures byte-identical to serial ones. Does nothing when
    /// this recorder is inactive.
    pub fn absorb(&self, other: &XrayRecorder) {
        if !self.is_active() {
            return;
        }
        let Some(mut theirs) = other.inner.lock().expect("xray lock").take() else {
            return;
        };
        other.active.store(false, Ordering::Relaxed);
        let mut guard = self.inner.lock().expect("xray lock");
        let Some(inner) = guard.as_mut() else {
            return;
        };
        inner.engines.append(&mut theirs.engines);
        for (combo, agg) in theirs.stages {
            let merged = inner.stages.entry(combo).or_default();
            merged.lines += agg.lines;
            merged.charged_before += agg.charged_before;
            merged.charged_after += agg.charged_after;
            for (total, delta) in merged.deltas.iter_mut().zip(agg.deltas) {
                *total += delta;
            }
        }
    }

    /// A deterministic, sorted copy of everything recorded so far.
    pub fn snapshot(&self) -> XraySnapshot {
        let guard = self.inner.lock().expect("xray lock");
        let Some(inner) = guard.as_ref() else {
            return XraySnapshot::default();
        };
        XraySnapshot {
            window_cap: inner.window_cap,
            engines: inner
                .engines
                .iter()
                .map(|e| EngineCapture {
                    label: e.label.clone(),
                    policy: e.policy.clone(),
                    num_banks: e.num_banks,
                    ar_sets_per_bank: e.ar_sets_per_bank,
                    window_stride: e.stride,
                    windows: e
                        .ar
                        .iter()
                        .map(|(&(bucket, bank, set), agg)| ArRow {
                            window: bucket * e.stride,
                            bank,
                            set,
                            rows_refreshed: agg.rows_refreshed,
                            rows_skipped: agg.rows_skipped,
                            discharged: agg.discharged,
                        })
                        .collect(),
                    bank_discharged: e
                        .bank_state
                        .iter()
                        .map(|(&(bucket, bank), &rows)| BankStateRow {
                            window: bucket * e.stride,
                            bank,
                            discharged_rows: rows,
                        })
                        .collect(),
                })
                .collect(),
            stages: inner
                .stages
                .iter()
                .map(|(&combo, agg)| StageCapture {
                    combo,
                    lines: agg.lines,
                    charged_before: agg.charged_before,
                    charged_after: agg.charged_after,
                    deltas: agg.deltas,
                })
                .collect(),
        }
    }
}

/// Whether `ZR_XRAY` enables the capture (set, non-empty, not `0`).
pub fn env_enabled() -> bool {
    std::env::var(ENV_XRAY)
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// The export directory named by `ZR_XRAY`, when its value is a path
/// rather than the bare `1` switch (the caller picks the fallback
/// directory in that case).
pub fn export_dir() -> Option<std::path::PathBuf> {
    std::env::var(ENV_XRAY)
        .ok()
        .filter(|v| !v.is_empty() && v != "0" && v != "1")
        .map(std::path::PathBuf::from)
}

fn window_cap_from_env() -> u64 {
    std::env::var(ENV_XRAY_WINDOWS)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_WINDOW_CAP)
}

/// RAII guard of one [`XrayRecorder::push_current`] override; dropping
/// it pops the override from this thread's stack.
#[derive(Debug)]
#[must_use = "dropping the guard immediately uninstalls the override"]
pub struct CurrentXrayGuard {
    /// Held for its Drop impl, which pops the override.
    _inner: zr_par::context::Guard<XrayRecorder>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let x = XrayRecorder::disabled();
        assert!(!x.is_active());
        assert_eq!(x.announce_engine("e", "charge_aware", 8, 8), 0);
        x.record_ar(0, 0, 0, 0, 10, 2, 2);
        x.record_window_state(0, 0, 0, 5);
        x.record_encode(3, 100, [10, 5, 0, 0], 85);
        let snap = x.snapshot();
        assert!(snap.engines.is_empty());
        assert!(snap.stages.is_empty());
    }

    #[test]
    fn records_and_snapshots_sorted_rows() {
        let x = XrayRecorder::memory_with_cap(16);
        let e = x.announce_engine("fig/gcc", "charge_aware", 2, 4);
        assert_eq!(e, 0);
        // Out-of-order banks within a window still snapshot sorted.
        x.record_ar(e, 0, 1, 0, 8, 0, 0);
        x.record_ar(e, 0, 0, 0, 6, 2, 2);
        x.record_ar(e, 1, 0, 3, 4, 4, 4);
        x.record_window_state(e, 1, 0, 7);
        x.record_encode(1, 64, [16, 0, 0, 0], 48);
        x.record_encode(1, 32, [8, 0, 0, 0], 24);
        let snap = x.snapshot();
        assert_eq!(snap.engines.len(), 1);
        let eng = &snap.engines[0];
        assert_eq!(eng.label, "fig/gcc");
        assert_eq!(eng.window_stride, 1);
        let keys: Vec<(u64, u32, u64)> = eng
            .windows
            .iter()
            .map(|r| (r.window, r.bank, r.set))
            .collect();
        assert_eq!(keys, vec![(0, 0, 0), (0, 1, 0), (1, 0, 3)]);
        assert_eq!(eng.bank_discharged.len(), 1);
        assert_eq!(eng.bank_discharged[0].discharged_rows, 7);
        assert_eq!(snap.stages.len(), 1);
        let stage = &snap.stages[0];
        assert_eq!(stage.lines, 2);
        assert_eq!(stage.charged_before, 96);
        assert_eq!(stage.charged_after, 72);
        assert_eq!(stage.deltas, [24, 0, 0, 0]);
    }

    #[test]
    fn downsampling_bounds_buckets_and_preserves_sums() {
        let cap = 4;
        let x = XrayRecorder::memory_with_cap(cap);
        let e = x.announce_engine("soak", "charge_aware", 1, 1);
        for w in 0..64u64 {
            x.record_ar(e, w, 0, 0, 10, w, 0);
            x.record_window_state(e, w, 0, 100 + w);
        }
        let snap = x.snapshot();
        let eng = &snap.engines[0];
        // 64 windows under a cap of 4 → stride 16, 4 buckets.
        assert_eq!(eng.window_stride, 16);
        assert_eq!(eng.windows.len(), cap as usize);
        let total_refreshed: u64 = eng.windows.iter().map(|r| r.rows_refreshed).sum();
        let total_skipped: u64 = eng.windows.iter().map(|r| r.rows_skipped).sum();
        assert_eq!(total_refreshed, 64 * 10);
        assert_eq!(total_skipped, (0..64).sum::<u64>());
        assert_eq!(
            eng.windows.iter().map(|r| r.window).collect::<Vec<_>>(),
            vec![0, 16, 32, 48]
        );
        // End-of-window state keeps the latest window of each bucket.
        assert_eq!(
            eng.bank_discharged
                .iter()
                .map(|r| r.discharged_rows)
                .collect::<Vec<_>>(),
            vec![115, 131, 147, 163]
        );
    }

    #[test]
    fn absorb_appends_engines_in_submission_order() {
        let parent = XrayRecorder::memory_with_cap(8);
        let p = parent.announce_engine("parent", "conventional", 1, 1);
        parent.record_ar(p, 0, 0, 0, 1, 0, 0);
        parent.record_encode(0, 8, [0, 0, 0, 0], 8);
        for job in 0..2u64 {
            let worker = XrayRecorder::memory_with_cap(8);
            let w = worker.announce_engine(&format!("job{job}"), "charge_aware", 1, 1);
            worker.record_ar(w, 0, 0, 0, job + 1, 0, 0);
            worker.record_encode(0, 8, [2, 0, 0, 0], 6);
            parent.absorb(&worker);
            assert!(!worker.is_active());
        }
        let snap = parent.snapshot();
        let labels: Vec<&str> = snap.engines.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, vec!["parent", "job0", "job1"]);
        assert_eq!(snap.engines[2].windows[0].rows_refreshed, 2);
        assert_eq!(snap.stages.len(), 1);
        assert_eq!(snap.stages[0].lines, 3);
        assert_eq!(snap.stages[0].deltas, [4, 0, 0, 0]);

        // Inactive parents ignore absorbed captures entirely.
        let disabled = XrayRecorder::disabled();
        let worker = XrayRecorder::memory_with_cap(8);
        worker.announce_engine("w", "charge_aware", 1, 1);
        disabled.absorb(&worker);
        assert!(disabled.snapshot().engines.is_empty());
        // ... and leave the worker untouched for a later real parent.
        assert!(worker.is_active());
    }

    #[test]
    fn current_defaults_to_global_and_is_thread_local() {
        assert!(Arc::ptr_eq(
            &XrayRecorder::current(),
            XrayRecorder::global()
        ));
        let x = Arc::new(XrayRecorder::memory_with_cap(4));
        let _guard = XrayRecorder::push_current(Arc::clone(&x));
        assert!(Arc::ptr_eq(&XrayRecorder::current(), &x));
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(Arc::ptr_eq(
                    &XrayRecorder::current(),
                    XrayRecorder::global()
                ));
            });
        });
    }

    #[test]
    fn snapshot_json_round_trips() {
        let x = XrayRecorder::memory_with_cap(8);
        let e = x.announce_engine("fig14/mcf", "charge_aware", 2, 2);
        x.record_ar(e, 0, 0, 1, 12, 4, 4);
        x.record_window_state(e, 0, 0, 9);
        x.record_encode(5, 512, [100, 0, 28, 0], 384);
        let snap = x.snapshot();
        let text = snap.to_json().to_pretty();
        let back = XraySnapshot::from_json(&crate::json::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
    }
}
