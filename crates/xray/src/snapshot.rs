//! The capture document: a deterministic, sorted view of everything the
//! recorder saw, plus its `xray.json` (schema 1) and CSV encodings.

use crate::json::Json;

/// `xray.json` schema version written by this crate.
pub const SCHEMA_VERSION: u64 = 1;

/// Number of attributed transform stages.
pub const STAGE_COUNT: usize = 4;

/// Stage names in pipeline order; index into [`StageCapture::deltas`].
pub const STAGE_NAMES: [&str; STAGE_COUNT] = ["ebdi", "bit_plane", "inversion", "rotation"];

/// Number of stage combinations (every subset of the four stages).
pub const COMBO_COUNT: usize = 1 << STAGE_COUNT;

/// Packs a stage configuration into the combo index used by
/// [`StageCapture::combo`]: bit 0 = EBDI, bit 1 = bit-plane
/// transposition, bit 2 = cell-aware inversion, bit 3 = per-row
/// rotation.
pub fn stage_combo(ebdi: bool, bit_plane: bool, cell_aware: bool, rotation: bool) -> u8 {
    (ebdi as u8) | (bit_plane as u8) << 1 | (cell_aware as u8) << 2 | (rotation as u8) << 3
}

/// Human-readable name of a combo, e.g. `ebdi+inversion`; `identity`
/// for the empty combination.
pub fn combo_name(combo: u8) -> String {
    let names: Vec<&str> = STAGE_NAMES
        .iter()
        .enumerate()
        .filter(|&(i, _)| combo & (1 << i) != 0)
        .map(|(_, &name)| name)
        .collect();
    if names.is_empty() {
        "identity".to_string()
    } else {
        names.join("+")
    }
}

/// One (window, bank, AR-set) cell of an engine's refresh time series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArRow {
    /// First window index of this row's (possibly downsampled) bucket.
    pub window: u64,
    /// Bank the AR command addressed.
    pub bank: u32,
    /// AR set within the bank (§IV-C staggered schedule position).
    pub set: u64,
    /// Chip rows actually refreshed.
    pub rows_refreshed: u64,
    /// Chip rows skipped by the charge-aware policy.
    pub rows_skipped: u64,
    /// Chip rows of the set holding the fully-discharged pattern when
    /// the AR command was processed.
    pub discharged: u64,
}

/// A bank's discharged chip-row count at the end of a window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankStateRow {
    /// First window index of the bucket this state belongs to.
    pub window: u64,
    /// Bank.
    pub bank: u32,
    /// Discharged chip rows across the whole bank at end of window.
    pub discharged_rows: u64,
}

/// One refresh engine's identity and windowed series.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineCapture {
    /// Telemetry scope path at construction (e.g.
    /// `fig14_refresh_reduction/mcf`), or `engine` outside any scope.
    pub label: String,
    /// Refresh policy name (`conventional`, `charge_aware`, ...).
    pub policy: String,
    /// Banks per rank.
    pub num_banks: u32,
    /// AR sets per bank (the §IV-C stagger granularity).
    pub ar_sets_per_bank: u64,
    /// Windows merged into each bucket (1 until downsampling kicks in).
    pub window_stride: u64,
    /// Sorted by (window, bank, set).
    pub windows: Vec<ArRow>,
    /// Sorted by (window, bank).
    pub bank_discharged: Vec<BankStateRow>,
}

impl EngineCapture {
    /// Total (refreshed, skipped) chip rows over the whole capture.
    pub fn totals(&self) -> (u64, u64) {
        self.windows.iter().fold((0, 0), |(r, s), row| {
            (r + row.rows_refreshed, s + row.rows_skipped)
        })
    }
}

/// Aggregated attribution for one transform-stage combination.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCapture {
    /// Stage combination (see [`stage_combo`]).
    pub combo: u8,
    /// Lines encoded under this combination.
    pub lines: u64,
    /// Charged cells summed over those lines before any stage ran.
    pub charged_before: u64,
    /// Charged cells after the full pipeline.
    pub charged_after: u64,
    /// Signed charged-cell reduction per stage, pipeline order
    /// ([`STAGE_NAMES`]); the telescoping sum equals
    /// `charged_before - charged_after` exactly.
    pub deltas: [i64; STAGE_COUNT],
}

impl StageCapture {
    /// `charged_before - charged_after`, the combination's total
    /// charged-cell reduction (negative if the pipeline added charge).
    pub fn total_reduction(&self) -> i64 {
        self.charged_before as i64 - self.charged_after as i64
    }

    /// Whether the per-stage deltas telescope exactly to the total.
    pub fn deltas_sum_to_total(&self) -> bool {
        self.deltas.iter().sum::<i64>() == self.total_reduction()
    }
}

/// The full capture document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct XraySnapshot {
    /// Per-engine window-bucket cap the capture ran with.
    pub window_cap: u64,
    /// Engines in announce order (submission order under a pooled
    /// sweep, which is what makes the document thread-count invariant).
    pub engines: Vec<EngineCapture>,
    /// Stage-combination aggregates, sorted by combo index.
    pub stages: Vec<StageCapture>,
}

impl XraySnapshot {
    /// Encodes the capture as the `xray.json` schema-1 document.
    pub fn to_json(&self) -> Json {
        let num = |n: u64| Json::Num(n as f64);
        let engines = self
            .engines
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("label".into(), Json::Str(e.label.clone())),
                    ("policy".into(), Json::Str(e.policy.clone())),
                    ("num_banks".into(), num(e.num_banks as u64)),
                    ("ar_sets_per_bank".into(), num(e.ar_sets_per_bank)),
                    ("window_stride".into(), num(e.window_stride)),
                    (
                        "windows".into(),
                        Json::Arr(
                            e.windows
                                .iter()
                                .map(|r| {
                                    Json::Obj(vec![
                                        ("window".into(), num(r.window)),
                                        ("bank".into(), num(r.bank as u64)),
                                        ("set".into(), num(r.set)),
                                        ("rows_refreshed".into(), num(r.rows_refreshed)),
                                        ("rows_skipped".into(), num(r.rows_skipped)),
                                        ("discharged".into(), num(r.discharged)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "bank_discharged".into(),
                        Json::Arr(
                            e.bank_discharged
                                .iter()
                                .map(|r| {
                                    Json::Obj(vec![
                                        ("window".into(), num(r.window)),
                                        ("bank".into(), num(r.bank as u64)),
                                        ("discharged_rows".into(), num(r.discharged_rows)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let stages = self
            .stages
            .iter()
            .map(|s| {
                let mut fields = vec![
                    ("combo".into(), num(s.combo as u64)),
                    ("stages".into(), Json::Str(combo_name(s.combo))),
                    ("lines".into(), num(s.lines)),
                    ("charged_before".into(), num(s.charged_before)),
                    ("charged_after".into(), num(s.charged_after)),
                ];
                for (name, delta) in STAGE_NAMES.iter().zip(s.deltas) {
                    fields.push(((*name).into(), Json::Num(delta as f64)));
                }
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), num(SCHEMA_VERSION)),
            ("window_cap".into(), num(self.window_cap)),
            ("engines".into(), Json::Arr(engines)),
            ("stages".into(), Json::Arr(stages)),
        ])
    }

    /// Decodes a schema-1 document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(doc: &Json) -> Result<XraySnapshot, String> {
        let field = |obj: &Json, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing numeric field `{key}`"))
        };
        let schema = field(doc, "schema")?;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "unsupported xray schema {schema} (expected {SCHEMA_VERSION})"
            ));
        }
        let mut snap = XraySnapshot {
            window_cap: field(doc, "window_cap")?,
            ..XraySnapshot::default()
        };
        for e in doc
            .get("engines")
            .and_then(Json::as_arr)
            .ok_or("missing `engines` array")?
        {
            let mut engine = EngineCapture {
                label: e
                    .get("label")
                    .and_then(Json::as_str)
                    .ok_or("missing engine `label`")?
                    .to_string(),
                policy: e
                    .get("policy")
                    .and_then(Json::as_str)
                    .ok_or("missing engine `policy`")?
                    .to_string(),
                num_banks: field(e, "num_banks")? as u32,
                ar_sets_per_bank: field(e, "ar_sets_per_bank")?,
                window_stride: field(e, "window_stride")?,
                ..EngineCapture::default()
            };
            for r in e
                .get("windows")
                .and_then(Json::as_arr)
                .ok_or("missing engine `windows` array")?
            {
                engine.windows.push(ArRow {
                    window: field(r, "window")?,
                    bank: field(r, "bank")? as u32,
                    set: field(r, "set")?,
                    rows_refreshed: field(r, "rows_refreshed")?,
                    rows_skipped: field(r, "rows_skipped")?,
                    discharged: field(r, "discharged")?,
                });
            }
            for r in e
                .get("bank_discharged")
                .and_then(Json::as_arr)
                .ok_or("missing engine `bank_discharged` array")?
            {
                engine.bank_discharged.push(BankStateRow {
                    window: field(r, "window")?,
                    bank: field(r, "bank")? as u32,
                    discharged_rows: field(r, "discharged_rows")?,
                });
            }
            snap.engines.push(engine);
        }
        for s in doc
            .get("stages")
            .and_then(Json::as_arr)
            .ok_or("missing `stages` array")?
        {
            let mut capture = StageCapture {
                combo: field(s, "combo")? as u8,
                lines: field(s, "lines")?,
                charged_before: field(s, "charged_before")?,
                charged_after: field(s, "charged_after")?,
                deltas: [0; STAGE_COUNT],
            };
            for (i, name) in STAGE_NAMES.iter().enumerate() {
                capture.deltas[i] = s
                    .get(name)
                    .and_then(Json::as_i64)
                    .ok_or_else(|| format!("missing stage field `{name}`"))?;
            }
            snap.stages.push(capture);
        }
        Ok(snap)
    }

    /// Encodes the windowed refresh series as CSV (one row per
    /// (engine, window, bank, set) cell) for spreadsheet plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "engine,label,policy,window,bank,set,rows_refreshed,rows_skipped,discharged\n",
        );
        for (i, e) in self.engines.iter().enumerate() {
            // Labels are telemetry scope paths (no quoting characters),
            // but escape defensively so the CSV always stays rectangular.
            let label = e.label.replace([',', '\n', '\r'], "_");
            for r in &e.windows {
                out.push_str(&format!(
                    "{i},{label},{},{},{},{},{},{},{}\n",
                    e.policy,
                    r.window,
                    r.bank,
                    r.set,
                    r.rows_refreshed,
                    r.rows_skipped,
                    r.discharged,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combo_packing_matches_names() {
        assert_eq!(stage_combo(false, false, false, false), 0);
        assert_eq!(combo_name(0), "identity");
        assert_eq!(stage_combo(true, false, false, false), 1);
        assert_eq!(combo_name(1), "ebdi");
        assert_eq!(stage_combo(true, true, true, true), 15);
        assert_eq!(combo_name(15), "ebdi+bit_plane+inversion+rotation");
        assert_eq!(stage_combo(false, true, false, true), 0b1010);
        assert_eq!(combo_name(0b1010), "bit_plane+rotation");
        assert_eq!(COMBO_COUNT, 16);
    }

    #[test]
    fn stage_capture_checks_telescoping_sum() {
        let good = StageCapture {
            combo: 5,
            lines: 2,
            charged_before: 100,
            charged_after: 60,
            deltas: [30, 0, 10, 0],
        };
        assert_eq!(good.total_reduction(), 40);
        assert!(good.deltas_sum_to_total());
        let bad = StageCapture {
            deltas: [1, 0, 0, 0],
            ..good
        };
        assert!(!bad.deltas_sum_to_total());
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = XraySnapshot {
            window_cap: 64,
            ..XraySnapshot::default()
        };
        let back = XraySnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(
            snap.to_csv(),
            "engine,label,policy,window,bank,set,rows_refreshed,rows_skipped,discharged\n"
        );
    }

    #[test]
    fn rejects_wrong_schema() {
        let mut doc = XraySnapshot::default().to_json();
        if let Json::Obj(fields) = &mut doc {
            fields[0].1 = Json::Num(99.0);
        }
        assert!(XraySnapshot::from_json(&doc)
            .unwrap_err()
            .contains("schema 99"));
    }

    #[test]
    fn csv_escapes_label_separators() {
        let snap = XraySnapshot {
            window_cap: 4,
            engines: vec![EngineCapture {
                label: "weird,label".into(),
                policy: "charge_aware".into(),
                num_banks: 1,
                ar_sets_per_bank: 1,
                window_stride: 1,
                windows: vec![ArRow {
                    window: 0,
                    bank: 0,
                    set: 0,
                    rows_refreshed: 3,
                    rows_skipped: 1,
                    discharged: 1,
                }],
                bank_discharged: vec![],
            }],
            stages: vec![],
        };
        let csv = snap.to_csv();
        assert!(csv.contains("0,weird_label,charge_aware,0,0,0,3,1,1\n"));
    }
}
