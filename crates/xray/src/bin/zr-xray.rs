//! The `zr-xray` CLI: renders charge-domain captures.
//!
//! ```text
//! zr-xray report <xray.json> [--engine N]   # heatmaps + stage table
//! zr-xray diff <a.json> <b.json>            # compare two captures
//! ```
//!
//! `report` prints the engine summary, a bank×window skip-fraction
//! heatmap per engine (or only engine `N` with `--engine`) and the
//! per-stage savings table; it exits non-zero if any stage row fails
//! the telescoping-sum check. `diff` prints per-engine and per-stage
//! deltas between two captures, or `captures are identical`.

use std::path::Path;
use std::process::ExitCode;

use zr_xray::report::{attribution_exact, render_diff, render_report};
use zr_xray::XraySnapshot;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  zr-xray report <xray.json> [--engine N]\n  zr-xray diff <a.json> <b.json>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "report" => cmd_report(rest),
        Some((cmd, rest)) if cmd == "diff" => cmd_diff(rest),
        _ => usage(),
    }
}

fn load(path: &str) -> Result<XraySnapshot, ExitCode> {
    zr_xray::load_snapshot(Path::new(path)).map_err(|e| {
        eprintln!("zr-xray: {e}");
        ExitCode::FAILURE
    })
}

fn cmd_report(rest: &[String]) -> ExitCode {
    let Some(path) = rest.first() else {
        return usage();
    };
    let mut engine: Option<usize> = None;
    let mut it = rest[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--engine" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => engine = Some(n),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let snap = match load(path) {
        Ok(snap) => snap,
        Err(code) => return code,
    };
    if let Some(n) = engine {
        if n >= snap.engines.len() {
            eprintln!(
                "zr-xray: engine {n} out of range ({} engine(s) in capture)",
                snap.engines.len()
            );
            return ExitCode::FAILURE;
        }
    }
    print!("{}", render_report(&snap, engine));
    if attribution_exact(&snap) {
        ExitCode::SUCCESS
    } else {
        eprintln!("zr-xray: stage attribution does not telescope — capture is inconsistent");
        ExitCode::FAILURE
    }
}

fn cmd_diff(rest: &[String]) -> ExitCode {
    let (Some(a), Some(b), None) = (rest.first(), rest.get(1), rest.get(2)) else {
        return usage();
    };
    let (a, b) = match (load(a), load(b)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    print!("{}", render_diff(&a, &b));
    ExitCode::SUCCESS
}
