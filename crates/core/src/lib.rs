//! ZERO-REFRESH: charge-aware DRAM refresh reduction with value
//! transformation (HPCA 2020).
//!
//! A DRAM cell in the *discharged* state needs no refresh: it has no
//! charge to lose. ZERO-REFRESH exploits that in two coordinated parts:
//!
//! - **Charge-aware refresh reduction** (DRAM side, §IV): rows whose cells
//!   are all discharged skip their refresh. A coarse SRAM *access-bit
//!   table* plus a DRAM-resident *discharged-status table* track which
//!   rows qualify without a large SRAM array.
//! - **Value transformation** (CPU side, §V): cachelines are re-encoded on
//!   the way to memory — base-delta (EBDI), bit-plane transposition and
//!   chip rotation — so that typical contents produce as many fully
//!   discharged rows as possible, in both true- and anti-cell regions.
//!
//! Because the mechanism is purely value-based, OS-cleansed (zeroed) idle
//! pages stop being refreshed *automatically*, with no new DRAM interface:
//! that is the paper's headline data-center result (46–83% refresh
//! reduction under real utilization traces, 37% even at 100% allocation).
//!
//! [`ZeroRefreshSystem`] is the top-level handle tying the pieces
//! together; the underlying layers are exposed through the re-exported
//! crates for finer-grained use.
//!
//! # Examples
//!
//! ```
//! use zero_refresh::{ZeroRefreshSystem, SystemConfig};
//!
//! let mut sys = ZeroRefreshSystem::new(&SystemConfig::small_test())?;
//!
//! // Ordinary memory traffic: the transformation is transparent.
//! sys.write_bytes(0, &[0xAB; 128])?;
//! assert_eq!(sys.read_bytes(0, 128)?, vec![0xAB; 128]);
//!
//! // Refresh: after the initial scan window, idle (cleansed) memory
//! // stops being refreshed.
//! sys.run_refresh_window();
//! let w = sys.run_refresh_window();
//! assert!(w.skip_fraction() > 0.99);
//! # Ok::<(), zero_refresh::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod system;

pub use system::{RefreshSummary, ZeroRefreshSystem, ZeroRefreshSystemBuilder};

pub use zr_dram::{RefreshPolicy, WindowStats};
pub use zr_energy::{EnergyAccountant, EnergyBreakdown};
pub use zr_types::{
    CachelineConfig, DramConfig, Error, Geometry, IddParams, SystemConfig, TemperatureMode,
    TimingParams, TransformConfig,
};

/// Result alias matching [`zr_types::Result`].
pub type Result<T> = zr_types::Result<T>;
