//! The top-level ZERO-REFRESH system handle.

use zr_dram::{RefreshPolicy, SweepArena, WindowStats};
use zr_energy::{EnergyAccountant, EnergyBreakdown};
use zr_memctrl::{AccessStats, MemoryController};
use zr_types::geometry::LineAddr;
use zr_types::units::Picojoules;
use zr_types::{Geometry, Result, SystemConfig, TemperatureMode};

/// Summary of the refresh activity since the system was built.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshSummary {
    /// Accumulated refresh statistics.
    pub stats: WindowStats,
    /// Retention windows completed.
    pub windows: u64,
    /// Refresh operations normalized to the conventional baseline
    /// (the Fig. 14 metric): 1.0 means no savings.
    pub normalized_refreshes: f64,
    /// Refresh energy (including all ZERO-REFRESH overheads) normalized
    /// to the conventional baseline (the Fig. 15 metric).
    pub normalized_energy: f64,
}

/// A configured ZERO-REFRESH memory system: transformer + controller +
/// rank + refresh engine + energy accounting.
///
/// See the [crate docs](crate) for the architecture overview and a usage
/// example.
#[derive(Debug, Clone)]
pub struct ZeroRefreshSystem {
    config: SystemConfig,
    controller: MemoryController,
    accountant: EnergyAccountant,
    windows: u64,
}

impl ZeroRefreshSystem {
    /// Builds a system with the paper's charge-aware policy.
    ///
    /// # Errors
    ///
    /// Returns [`zr_types::Error::InvalidConfig`] if the configuration
    /// does not validate.
    pub fn new(config: &SystemConfig) -> Result<Self> {
        Self::with_policy(config, RefreshPolicy::ChargeAware)
    }

    /// Builds a system with an explicit refresh policy (conventional and
    /// naive-SRAM policies serve as baselines/ablations).
    ///
    /// # Errors
    ///
    /// Returns [`zr_types::Error::InvalidConfig`] if the configuration
    /// does not validate.
    pub fn with_policy(config: &SystemConfig, policy: RefreshPolicy) -> Result<Self> {
        Ok(ZeroRefreshSystem {
            controller: MemoryController::new(config, policy)?,
            accountant: EnergyAccountant::new(config)?,
            config: config.clone(),
            windows: 0,
        })
    }

    /// Starts a [`ZeroRefreshSystemBuilder`] from the paper's defaults.
    pub fn builder() -> ZeroRefreshSystemBuilder {
        ZeroRefreshSystemBuilder::default()
    }

    /// The configuration the system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The derived geometry.
    pub fn geometry(&self) -> &Geometry {
        self.controller.geometry()
    }

    /// The underlying memory controller.
    pub fn controller(&self) -> &MemoryController {
        &self.controller
    }

    /// Mutable access to the controller (experiments, failure injection).
    pub fn controller_mut(&mut self) -> &mut MemoryController {
        &mut self.controller
    }

    /// Routes all metrics and events of this system to `telemetry`
    /// instead of the process-global instance (hermetic tests, side-by-
    /// side comparisons). Cascades to the controller, refresh engine and
    /// transformer.
    pub fn set_telemetry(&mut self, telemetry: std::sync::Arc<zr_telemetry::Telemetry>) {
        self.controller.set_telemetry(telemetry);
    }

    /// Routes this system's charge-domain xray capture to `xray` instead
    /// of the process-wide recorder (hermetic tests, side-by-side
    /// comparisons). Cascades to the refresh engine and transformer.
    pub fn set_xray(&mut self, xray: std::sync::Arc<zr_xray::XrayRecorder>) {
        self.controller.set_xray(xray);
    }

    /// Read/write traffic counters.
    pub fn access_stats(&self) -> AccessStats {
        self.controller.stats()
    }

    /// Writes one cacheline at line address `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the controller's length/address errors.
    pub fn write_line(&mut self, addr: LineAddr, data: &[u8]) -> Result<()> {
        self.controller.write_line(addr, data)
    }

    /// [`Self::write_line`] against the caller's sweep arena (the
    /// allocation-free form the experiment drivers use).
    ///
    /// # Errors
    ///
    /// Propagates the controller's length/address errors.
    pub fn write_line_with(
        &mut self,
        addr: LineAddr,
        data: &[u8],
        arena: &mut SweepArena,
    ) -> Result<()> {
        self.controller.write_line_with(addr, data, arena)
    }

    /// Reads one cacheline.
    ///
    /// # Errors
    ///
    /// Propagates the controller's address errors.
    pub fn read_line(&mut self, addr: LineAddr) -> Result<Vec<u8>> {
        self.controller.read_line(addr)
    }

    /// Writes a line-aligned byte buffer.
    ///
    /// # Errors
    ///
    /// Propagates the controller's alignment/address errors.
    pub fn write_bytes(&mut self, byte_addr: u64, data: &[u8]) -> Result<()> {
        self.controller.write_bytes(byte_addr, data)
    }

    /// Reads a line-aligned byte range.
    ///
    /// # Errors
    ///
    /// Propagates the controller's alignment/address errors.
    pub fn read_bytes(&mut self, byte_addr: u64, len: usize) -> Result<Vec<u8>> {
        self.controller.read_bytes(byte_addr, len)
    }

    /// Zero-fills a range of cachelines (the OS cleansing path of §III-B).
    ///
    /// # Errors
    ///
    /// Propagates the controller's address errors.
    pub fn zero_fill_lines(&mut self, start: LineAddr, count: u64) -> Result<()> {
        self.controller.zero_fill_lines(start, count)
    }

    /// Runs one retention window of refresh and returns its statistics.
    pub fn run_refresh_window(&mut self) -> WindowStats {
        self.windows += 1;
        self.controller.run_refresh_window()
    }

    /// [`Self::run_refresh_window`] against the caller's sweep arena,
    /// reset (not freed) at the window boundary.
    pub fn run_refresh_window_with(&mut self, arena: &mut SweepArena) -> WindowStats {
        self.windows += 1;
        self.controller.run_refresh_window_with(arena)
    }

    /// Retention windows run so far.
    pub fn windows_run(&self) -> u64 {
        self.windows
    }

    /// The ZERO-REFRESH energy breakdown for the activity so far
    /// (refreshes performed, status-table traffic, EBDI operations and
    /// tracking-SRAM leakage).
    pub fn energy_breakdown(&self) -> EnergyBreakdown {
        let totals = self.controller.engine().totals();
        // Leakage is charged for the *full-scale* tracking structure of the
        // policy (reference-scale accounting; see `zr_energy::accounting`).
        let sram_bytes = match self.controller.engine().policy() {
            RefreshPolicy::Conventional => 0,
            RefreshPolicy::ChargeAware => zr_energy::accounting::ACCESS_TABLE_FULLSCALE_BYTES,
            RefreshPolicy::NaiveSram => zr_energy::accounting::NAIVE_TABLE_FULLSCALE_BYTES,
        };
        let ebdi_ops = match self.controller.engine().policy() {
            // The conventional baseline has no EBDI module on the path.
            RefreshPolicy::Conventional => 0,
            _ => self.controller.stats().ebdi_operations(),
        };
        self.accountant.breakdown(
            totals.rows_refreshed,
            totals.table_reads,
            totals.table_writes,
            ebdi_ops,
            sram_bytes,
            self.windows.max(1),
        )
    }

    /// Energy of the conventional baseline over the same number of
    /// windows.
    pub fn conventional_energy(&self) -> Picojoules {
        self.accountant.conventional_energy(self.windows.max(1))
    }

    /// Summary of refresh and energy activity so far.
    pub fn refresh_summary(&self) -> RefreshSummary {
        let stats = self.controller.engine().totals();
        let breakdown = self.energy_breakdown();
        RefreshSummary {
            stats,
            windows: self.windows,
            normalized_refreshes: stats.normalized_refreshes(),
            normalized_energy: self.accountant.normalized(&breakdown, self.windows.max(1)),
        }
    }
}

/// Builder for [`ZeroRefreshSystem`] (capacity, row size, temperature,
/// policy and transformation-stage toggles over the paper defaults).
///
/// # Examples
///
/// ```
/// use zero_refresh::{RefreshPolicy, TemperatureMode, ZeroRefreshSystem};
///
/// let sys = ZeroRefreshSystem::builder()
///     .capacity_bytes(64 << 20)
///     .row_bytes(2048)
///     .temperature(TemperatureMode::Normal)
///     .policy(RefreshPolicy::ChargeAware)
///     .build()?;
/// assert_eq!(sys.geometry().row_bytes(), 2048);
/// # Ok::<(), zero_refresh::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct ZeroRefreshSystemBuilder {
    config: SystemConfig,
    policy: RefreshPolicy,
}

impl Default for ZeroRefreshSystemBuilder {
    fn default() -> Self {
        ZeroRefreshSystemBuilder {
            config: SystemConfig::paper_default(),
            policy: RefreshPolicy::ChargeAware,
        }
    }
}

impl ZeroRefreshSystemBuilder {
    /// Sets the simulated capacity in bytes.
    pub fn capacity_bytes(&mut self, bytes: u64) -> &mut Self {
        self.config.dram.capacity_bytes = bytes;
        self
    }

    /// Sets the rank-row (row buffer) size in bytes.
    pub fn row_bytes(&mut self, bytes: usize) -> &mut Self {
        self.config.dram.row_bytes = bytes;
        self
    }

    /// Sets the temperature mode (retention window).
    pub fn temperature(&mut self, mode: TemperatureMode) -> &mut Self {
        self.config.timing.temperature = mode;
        self
    }

    /// Sets the refresh policy.
    pub fn policy(&mut self, policy: RefreshPolicy) -> &mut Self {
        self.policy = policy;
        self
    }

    /// Toggles the transformation stages (for ablations).
    pub fn transform(&mut self, transform: zr_types::TransformConfig) -> &mut Self {
        self.config.transform = transform;
        self
    }

    /// Replaces the whole configuration.
    pub fn config(&mut self, config: SystemConfig) -> &mut Self {
        self.config = config;
        self
    }

    /// Builds the system.
    ///
    /// # Errors
    ///
    /// Returns [`zr_types::Error::InvalidConfig`] if the accumulated
    /// configuration does not validate.
    pub fn build(&self) -> Result<ZeroRefreshSystem> {
        ZeroRefreshSystem::with_policy(&self.config, self.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> ZeroRefreshSystem {
        ZeroRefreshSystem::new(&SystemConfig::small_test()).unwrap()
    }

    #[test]
    fn round_trip_through_public_api() {
        let mut s = sys();
        let data: Vec<u8> = (0..192u8).collect();
        s.write_bytes(64, &data).unwrap();
        assert_eq!(s.read_bytes(64, 192).unwrap(), data);
    }

    #[test]
    fn idle_memory_stops_refreshing() {
        let mut s = sys();
        s.run_refresh_window();
        let w = s.run_refresh_window();
        assert_eq!(w.rows_refreshed, 0);
        assert_eq!(s.windows_run(), 2);
    }

    #[test]
    fn summary_tracks_normalization() {
        let mut s = sys();
        s.run_refresh_window(); // full scan
        s.run_refresh_window(); // full skip
        let summary = s.refresh_summary();
        assert!((summary.normalized_refreshes - 0.5).abs() < 1e-12);
        assert!(summary.normalized_energy < 1.0);
        assert_eq!(summary.windows, 2);
    }

    #[test]
    fn conventional_policy_normalizes_to_one() {
        let mut s = ZeroRefreshSystem::with_policy(
            &SystemConfig::small_test(),
            RefreshPolicy::Conventional,
        )
        .unwrap();
        s.run_refresh_window();
        let summary = s.refresh_summary();
        assert_eq!(summary.normalized_refreshes, 1.0);
        // No EBDI module, no tracking SRAM: energy is exactly baseline.
        assert!((summary.normalized_energy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn charge_aware_beats_conventional_energy_on_idle_memory() {
        let mut zr = sys();
        for _ in 0..4 {
            zr.run_refresh_window();
        }
        let summary = zr.refresh_summary();
        assert!(
            summary.normalized_energy < 0.5,
            "normalized energy {}",
            summary.normalized_energy
        );
    }

    #[test]
    fn builder_applies_settings() {
        let s = ZeroRefreshSystem::builder()
            .capacity_bytes(2 * 64 * 2048)
            .row_bytes(2048)
            .temperature(TemperatureMode::Normal)
            .build()
            .unwrap();
        assert_eq!(s.geometry().row_bytes(), 2048);
        assert_eq!(s.config().timing.temperature, TemperatureMode::Normal);
    }

    #[test]
    fn builder_rejects_bad_config() {
        let mut b = ZeroRefreshSystem::builder();
        b.capacity_bytes(12345); // not a whole number of rows
        assert!(b.build().is_err());
    }

    #[test]
    fn naive_policy_accounts_big_sram() {
        // At realistic scale the naive per-row SRAM (1 bit per rank-row)
        // is 4x the access-bit table (1 bit per AR set), and grows with
        // capacity while the access-bit table stays at 8 KB beyond 8 GB.
        let cfg = SystemConfig::paper_default(); // 1 GiB scaled default
        let naive = ZeroRefreshSystem::with_policy(&cfg, RefreshPolicy::NaiveSram).unwrap();
        let split = ZeroRefreshSystem::new(&cfg).unwrap();
        let e_naive = naive.energy_breakdown().sram_leakage;
        let e_split = split.energy_breakdown().sram_leakage;
        assert!(
            e_naive.0 > 3.0 * e_split.0,
            "{} vs {}",
            e_naive.0,
            e_split.0
        );
    }

    #[test]
    fn zero_fill_path() {
        let mut s = sys();
        s.write_bytes(0, &[9u8; 4096]).unwrap();
        s.zero_fill_lines(LineAddr(0), 64).unwrap();
        s.run_refresh_window();
        let w = s.run_refresh_window();
        assert_eq!(w.skip_fraction(), 1.0);
    }
}
