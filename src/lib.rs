//! Facade crate for the ZERO-REFRESH reproduction workspace.
//!
//! This crate re-exports the workspace's public API so examples, tests
//! and downstream users can depend on a single package. The layering:
//!
//! - [`zero_refresh`] — the paper's contribution: [`zero_refresh::ZeroRefreshSystem`]
//!   ties the value transformation, the charge-aware refresh engine and
//!   the energy accounting together;
//! - [`zr_transform`] — the CPU-side EBDI / bit-plane / rotation pipeline;
//! - [`zr_dram`] — the DDR4 device model with discharged-row tracking;
//! - [`zr_memctrl`] — the transforming memory controller;
//! - [`zr_workloads`] — benchmark content models, traces, data-center
//!   utilization statistics;
//! - [`zr_energy`] — IDD-based power model and SRAM/EBDI overheads;
//! - [`zr_timing`] — the event-driven bank-timing simulator;
//! - [`zr_trace`] — the cycle-level command flight recorder and replay
//!   verifier;
//! - [`zr_par`] — the deterministic scoped-thread work pool driving the
//!   evaluation sweeps (`ZR_THREADS`, see docs/PARALLELISM.md);
//! - [`zr_insight`] — span-level profile differencing and perf-baseline
//!   history over `zr-prof` captures (see docs/INSIGHT.md);
//! - [`zr_baselines`] — Smart Refresh and the conventional baseline;
//! - [`zr_sim`] — the experiment drivers reproducing the evaluation;
//! - [`zr_serve`] — the long-running sweep service with a
//!   content-addressed result cache and single-flight coalescing
//!   (see docs/SERVE.md);
//! - [`zr_types`] — shared configuration and geometry types.
//!
//! # Examples
//!
//! ```
//! use zero_refresh_suite::prelude::*;
//!
//! let mut sys = ZeroRefreshSystem::new(&SystemConfig::small_test())?;
//! sys.write_bytes(0, &[1u8; 64])?;
//! assert_eq!(sys.read_bytes(0, 64)?, vec![1u8; 64]);
//! # Ok::<(), Error>(())
//! ```

#![warn(missing_docs)]

pub use zero_refresh;
pub use zr_baselines;
pub use zr_dram;
pub use zr_energy;
pub use zr_insight;
pub use zr_memctrl;
pub use zr_par;
pub use zr_serve;
pub use zr_sim;
pub use zr_timing;
pub use zr_trace;
pub use zr_transform;
pub use zr_types;
pub use zr_workloads;

/// Convenience prelude with the most common entry points.
pub mod prelude {
    pub use zero_refresh::{Error, RefreshPolicy, SystemConfig, WindowStats, ZeroRefreshSystem};
    pub use zr_sim::experiments::ExperimentConfig;
    pub use zr_types::geometry::LineAddr;
    pub use zr_workloads::{Benchmark, DatacenterTrace};
}
