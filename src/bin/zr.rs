//! `zr` — command-line front end to the ZERO-REFRESH reproduction.
//!
//! ```text
//! zr info [capacity_mb]          geometry + config summary
//! zr benchmarks                  the modeled workload suite
//! zr traces                      the data-center trace models
//! zr transform <preset> [row]    walk one cacheline through the pipeline
//! zr measure <bench> [alloc%] [row_bytes] [normal|extended]
//! zr compare <bench> [alloc%]    ZERO-REFRESH vs prior work
//! ```

use zero_refresh_suite::prelude::*;
use zr_sim::experiments::{energy, priorwork, refresh};
use zr_transform::ValueTransformer;
use zr_types::geometry::RowIndex;
use zr_types::TemperatureMode;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("info") => info(args.get(1)),
        Some("benchmarks") => benchmarks(),
        Some("traces") => traces(),
        Some("transform") => transform(args.get(1), args.get(2)),
        Some("measure") => measure(&args[1..]),
        Some("compare") => compare(&args[1..]),
        _ => {
            usage();
            Ok(())
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn usage() {
    println!("zr — ZERO-REFRESH (HPCA 2020) reproduction");
    println!();
    println!("  zr info [capacity_mb]          geometry + config summary");
    println!("  zr benchmarks                  the modeled workload suite");
    println!("  zr traces                      the data-center trace models");
    println!("  zr transform <preset> [row]    presets: pointer smallint zero text random");
    println!("  zr measure <bench> [alloc%] [row_bytes] [normal|extended]");
    println!("  zr compare <bench> [alloc%]    ZERO-REFRESH vs prior work");
}

fn experiment(alloc_unused: Option<&String>) -> ExperimentConfig {
    let _ = alloc_unused;
    ExperimentConfig {
        capacity_bytes: 16 << 20,
        windows: 4,
        ..ExperimentConfig::default()
    }
}

fn info(capacity_mb: Option<&String>) -> Result<(), Error> {
    let mut cfg = SystemConfig::paper_default();
    if let Some(mb) = capacity_mb.and_then(|v| v.parse::<u64>().ok()) {
        cfg.dram.capacity_bytes = mb << 20;
    }
    cfg.validate()?;
    let geom = cfg.geometry();
    println!("ZERO-REFRESH system configuration (Table II, scaled)");
    println!("  capacity:        {} MiB", geom.capacity_bytes() >> 20);
    println!(
        "  organization:    {} chips x {} banks, {} B rank rows",
        geom.num_chips(),
        geom.num_banks(),
        geom.row_bytes()
    );
    println!(
        "  rows/bank:       {} ({} per AR set, {} sets)",
        geom.rows_per_bank(),
        geom.ar_rows(),
        geom.ar_sets_per_bank()
    );
    println!(
        "  cell blocks:     {} rows per true/anti block",
        cfg.dram.cell_block_rows
    );
    println!(
        "  retention:       {} ms ({:?}), tREFI {:.2} us",
        cfg.timing.t_ret().to_millis(),
        cfg.timing.temperature,
        cfg.timing.t_refi().0 / 1000.0
    );
    println!(
        "  access-bit SRAM: {} bytes ({} bits)",
        geom.access_bit_count().div_ceil(8),
        geom.access_bit_count()
    );
    Ok(())
}

fn benchmarks() -> Result<(), Error> {
    println!(
        "{:<12} {:>7} {:>7} {:>7} {:>9} {:>8}",
        "benchmark", "mpki", "writes", "ws(MB)", "bdi-frac", "exp.red"
    );
    for b in Benchmark::all() {
        let p = b.profile();
        let w = p.effective_fractions();
        println!(
            "{:<12} {:>7.1} {:>6.0}% {:>7} {:>8.0}% {:>7.0}%",
            p.name,
            p.mpki,
            100.0 * p.write_fraction,
            p.working_set_bytes >> 20,
            100.0 * (w[1] + w[2]),
            100.0 * p.expected_reduction(),
        );
    }
    Ok(())
}

fn traces() -> Result<(), Error> {
    println!(
        "{:<12} {:>10} {:>8} {:>8} {:>8}",
        "trace", "mean", "p10", "p50", "p90"
    );
    for t in DatacenterTrace::all() {
        println!(
            "{:<12} {:>9.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            t.name(),
            100.0 * t.mean_utilization(),
            100.0 * t.quantile(0.1),
            100.0 * t.quantile(0.5),
            100.0 * t.quantile(0.9),
        );
    }
    Ok(())
}

fn preset_line(preset: &str) -> Result<[u8; 64], Error> {
    let mut line = [0u8; 64];
    match preset {
        "zero" => {}
        "pointer" => {
            for (i, w) in line.chunks_exact_mut(8).enumerate() {
                w.copy_from_slice(&(0x0000_7f12_3456_0000u64 + 24 * i as u64).to_le_bytes());
            }
        }
        "smallint" => {
            for (i, w) in line.chunks_exact_mut(8).enumerate() {
                w.copy_from_slice(&((i as u64 * 3) % 100).to_le_bytes());
            }
        }
        "text" => {
            line.copy_from_slice(
                b"the quick brown fox jumps over the lazy dog; dram refresh sleep",
            );
        }
        "random" => {
            let mut s = 0x1234_5678u64;
            for b in line.iter_mut() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                *b = (s >> 56) as u8;
            }
        }
        other => {
            return Err(Error::UnknownName {
                name: other.to_string(),
            })
        }
    }
    Ok(line)
}

fn transform(preset: Option<&String>, row: Option<&String>) -> Result<(), Error> {
    let preset = preset.map(String::as_str).unwrap_or("pointer");
    let row = RowIndex(row.and_then(|v| v.parse().ok()).unwrap_or(0));
    let cfg = SystemConfig::paper_default();
    let tf = ValueTransformer::new(&cfg)?;
    let line = preset_line(preset)?;
    let encoded = tf.encode(&line, row)?;
    let zeros_before = line.iter().filter(|&&b| b == 0).count();
    let pattern = tf.cell_type(row).discharged_byte();
    let discharged = encoded.iter().filter(|&&b| b == pattern).count();
    println!(
        "preset '{preset}' stored in row {} ({:?} cells):",
        row.0,
        tf.cell_type(row)
    );
    println!("  original  zero bytes: {zeros_before}/64");
    println!("  encoded   discharged bytes: {discharged}/64");
    for (c, seg) in encoded.chunks_exact(8).enumerate() {
        let disch = seg.iter().all(|&b| b == pattern);
        print!("  chip {c}: ");
        for b in seg {
            print!("{b:02x} ");
        }
        println!("{}", if disch { " <- discharged" } else { "" });
    }
    let back = tf.decode(&encoded, row)?;
    assert_eq!(back, line.to_vec());
    println!("  inverse verified: decode(encode(x)) == x");
    Ok(())
}

fn parse_measure_args(args: &[String]) -> Result<(Benchmark, f64, usize, TemperatureMode), Error> {
    let benchmark = match args.first() {
        Some(name) => Benchmark::by_name(name)?,
        None => Benchmark::Mcf,
    };
    let alloc = args
        .get(1)
        .and_then(|v| v.parse::<f64>().ok())
        .map(|p| p / 100.0)
        .unwrap_or(1.0)
        .clamp(0.0, 1.0);
    let row_bytes = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(4096);
    let temp = match args.get(3).map(String::as_str) {
        Some("normal") => TemperatureMode::Normal,
        _ => TemperatureMode::Extended,
    };
    Ok((benchmark, alloc, row_bytes, temp))
}

fn measure(args: &[String]) -> Result<(), Error> {
    let (benchmark, alloc, row_bytes, temperature) = parse_measure_args(args)?;
    let exp = ExperimentConfig {
        row_bytes,
        temperature,
        ..experiment(None)
    };
    let m = refresh::measure(benchmark, alloc, &exp)?;
    let e = energy::measure(benchmark, alloc, &exp)?;
    println!(
        "{} @ {:.0}% alloc, {} B rows, {:?}:",
        benchmark.name(),
        100.0 * alloc,
        row_bytes,
        temperature
    );
    println!(
        "  refresh ops:  {:.3} normalized ({:.1}% reduction)",
        m.normalized,
        100.0 * (1.0 - m.normalized)
    );
    println!(
        "  energy:       {:.3} normalized ({:.1}% saved, overheads included)",
        e.normalized_energy,
        100.0 * (1.0 - e.normalized_energy)
    );
    Ok(())
}

fn compare(args: &[String]) -> Result<(), Error> {
    let (benchmark, alloc, _, _) = parse_measure_args(args)?;
    let exp = experiment(None);
    let c = priorwork::compare(benchmark, alloc, &exp)?;
    println!(
        "{} @ {:.0}% alloc — normalized refresh operations:",
        c.benchmark,
        100.0 * alloc
    );
    println!("  zero-refresh:    {:.3}", c.zero_refresh);
    println!(
        "  zib:             {:.3}  (+{:.1}% DRAM capacity overhead)",
        c.zib,
        100.0 * c.zib_overhead
    );
    println!(
        "  validity oracle: {:.3}  (needs OS-DRAM interface)",
        c.validity_oracle
    );
    println!("  smart refresh:   {:.3}  (at 32 GB)", c.smart_refresh);
    Ok(())
}
